"""Tests for the Section VII sympathetic-cooling extension on TILT.

The paper discusses sympathetic cooling as a technique that composes with
TILT (Section VII): a dual-species chain can be re-cooled during execution,
bounding the heating that tape moves accumulate.  The reproduction exposes
it through ``NoiseParameters.tilt_cooling_interval_moves``.
"""

import pytest

from repro.compiler.pipeline import compile_for_tilt
from repro.exceptions import SimulationError
from repro.noise.heating import quanta_after_moves
from repro.noise.parameters import NoiseParameters
from repro.sim.tilt_sim import TiltSimulator
from repro.workloads.qft import qft_workload


class TestCoolingModel:
    def test_disabled_by_default(self):
        params = NoiseParameters()
        assert params.tilt_cooling_interval_moves == 0
        assert quanta_after_moves(10, 64, params) == pytest.approx(
            10 * params.shuttle_quanta(64)
        )

    def test_quanta_reset_every_interval(self):
        params = NoiseParameters(tilt_cooling_interval_moves=4)
        k = params.shuttle_quanta(64)
        assert quanta_after_moves(3, 64, params) == pytest.approx(3 * k)
        assert quanta_after_moves(5, 64, params) == pytest.approx(1 * k)
        assert quanta_after_moves(9, 64, params) == pytest.approx(1 * k)

    def test_interval_boundary_sees_full_heating(self):
        # The cooling pause runs *between* the interval-th move and the
        # next one: a gate right after move `interval` (or any exact
        # multiple) must see the whole window's heating, not a freshly
        # cooled chain.  Regression for the `num_moves % interval == 0`
        # bug that credited cooling before it happened.
        params = NoiseParameters(tilt_cooling_interval_moves=4)
        k = params.shuttle_quanta(64)
        assert quanta_after_moves(4, 64, params) == pytest.approx(4 * k)
        assert quanta_after_moves(8, 64, params) == pytest.approx(4 * k)
        assert quanta_after_moves(0, 64, params) == pytest.approx(0.0)
        # interval 1: every gate after a move sees exactly one move of heat
        one = NoiseParameters(tilt_cooling_interval_moves=1)
        assert quanta_after_moves(7, 64, one) == pytest.approx(
            one.shuttle_quanta(64)
        )

    def test_negative_interval_rejected(self):
        with pytest.raises(SimulationError):
            NoiseParameters(tilt_cooling_interval_moves=-1)
        with pytest.raises(SimulationError):
            NoiseParameters(tilt_cooling_time_us=-5.0)


class TestCoolingOnWorkloads:
    def test_cooling_improves_success_on_deep_circuits(self, tilt16):
        compiled = compile_for_tilt(qft_workload(16), tilt16)
        base = TiltSimulator(tilt16, NoiseParameters()).run(compiled)
        cooled = TiltSimulator(
            tilt16, NoiseParameters(tilt_cooling_interval_moves=2)
        ).run(compiled)
        assert cooled.log10_success_rate > base.log10_success_rate

    def test_cooling_costs_execution_time(self, tilt16):
        compiled = compile_for_tilt(qft_workload(16), tilt16)
        base = TiltSimulator(tilt16, NoiseParameters()).run(compiled)
        cooled = TiltSimulator(
            tilt16,
            NoiseParameters(tilt_cooling_interval_moves=2,
                            tilt_cooling_time_us=1000.0),
        ).run(compiled)
        assert cooled.execution_time_us > base.execution_time_us

    def test_frequent_cooling_beats_rare_cooling(self, tilt16):
        compiled = compile_for_tilt(qft_workload(16), tilt16)

        def success(interval: int) -> float:
            params = NoiseParameters(tilt_cooling_interval_moves=interval)
            return TiltSimulator(tilt16, params).run(compiled).log10_success_rate

        assert success(1) >= success(8) >= success(0)
