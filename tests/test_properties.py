"""Property-based tests (hypothesis) for core invariants."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch.tilt import TiltDevice
from repro.circuits.circuit import Circuit
from repro.circuits.dag import FrontierTracker
from repro.circuits.random import random_circuit
from repro.compiler.decompose import decompose_to_native, merge_adjacent_rotations
from repro.compiler.layout import QubitMapping
from repro.compiler.routing import check_routed
from repro.compiler.schedule import schedule_tape_moves
from repro.compiler.swap_linq import LinqSwapInserter
from repro.noise.fidelity import SuccessRateAccumulator, two_qubit_fidelity
from repro.noise.parameters import NoiseParameters

SLOW = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# Circuit-level invariants
# ----------------------------------------------------------------------
@given(seed=st.integers(0, 10_000), num_gates=st.integers(1, 60))
@SLOW
def test_random_circuit_depth_bounds(seed, num_gates):
    circuit = random_circuit(6, num_gates, seed=seed)
    depth = circuit.depth()
    assert 1 <= depth <= num_gates
    assert circuit.num_gates() == num_gates


@given(seed=st.integers(0, 10_000))
@SLOW
def test_inverse_of_inverse_is_identity(seed):
    circuit = random_circuit(5, 25, seed=seed)
    assert circuit.inverse().inverse() == circuit


@given(seed=st.integers(0, 10_000))
@SLOW
def test_qasm_roundtrip_preserves_structure(seed):
    from repro.circuits.qasm import circuit_to_qasm, qasm_to_circuit

    circuit = random_circuit(5, 30, seed=seed)
    parsed = qasm_to_circuit(circuit_to_qasm(circuit))
    assert len(parsed) == len(circuit)
    assert [g.qubits for g in parsed] == [g.qubits for g in circuit]


@given(seed=st.integers(0, 10_000))
@SLOW
def test_frontier_tracker_full_drain(seed):
    circuit = random_circuit(6, 40, seed=seed)
    tracker = FrontierTracker(circuit)
    executed = []
    while not tracker.is_done():
        index = min(tracker.ready())
        executed.append(index)
        tracker.complete(index)
    assert sorted(executed) == list(range(len(circuit)))


# ----------------------------------------------------------------------
# Decomposition invariants
# ----------------------------------------------------------------------
@given(seed=st.integers(0, 10_000))
@SLOW
def test_native_decomposition_is_native_and_counts_grow(seed):
    circuit = random_circuit(6, 30, seed=seed)
    native = decompose_to_native(circuit)
    assert all(g.is_native for g in native)
    assert native.num_two_qubit_gates() >= sum(
        1 for g in circuit if g.is_two_qubit and g.name != "swap"
    )


@given(seed=st.integers(0, 10_000))
@SLOW
def test_rotation_merging_never_grows_the_circuit(seed):
    native = decompose_to_native(random_circuit(5, 30, seed=seed))
    merged = merge_adjacent_rotations(native)
    assert len(merged) <= len(native)
    # Two-qubit structure untouched.
    assert merged.num_two_qubit_gates() == native.num_two_qubit_gates()


# ----------------------------------------------------------------------
# Mapping invariants
# ----------------------------------------------------------------------
@given(permutation=st.permutations(list(range(8))),
       swaps=st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)),
                      max_size=12))
@SLOW
def test_mapping_stays_a_bijection_under_swaps(permutation, swaps):
    mapping = QubitMapping(list(permutation))
    for a, b in swaps:
        mapping.swap_physical(a, b)
    layout = mapping.logical_to_physical()
    assert sorted(layout) == list(range(8))
    for logical, physical in enumerate(layout):
        assert mapping.logical(physical) == logical


# ----------------------------------------------------------------------
# Routing + scheduling invariants
# ----------------------------------------------------------------------
@given(seed=st.integers(0, 10_000), head=st.integers(3, 8))
@SLOW
def test_routing_and_scheduling_invariants(seed, head):
    device = TiltDevice(num_qubits=12, head_size=head)
    circuit = decompose_to_native(
        random_circuit(12, 25, seed=seed, two_qubit_fraction=0.5)
    )
    routed = LinqSwapInserter(device).route(circuit)
    # Every two-qubit gate fits under the head.
    check_routed(routed.circuit, device)
    # Non-swap gate multiset is preserved by routing.
    original = [g.name for g in circuit if g.is_two_qubit]
    kept = [g.name for g in routed.circuit if g.is_two_qubit and g.name != "swap"]
    assert sorted(original) == sorted(kept)
    # The schedule covers every routed gate exactly once and validates.
    program = schedule_tape_moves(routed.circuit, device)
    program.validate()
    assert program.num_scheduled_gates == len(routed.circuit)
    assert program.num_moves <= len(routed.circuit)


# ----------------------------------------------------------------------
# Noise-model invariants
# ----------------------------------------------------------------------
@given(time_us=st.floats(0, 5_000), quanta=st.floats(0, 2_000))
@SLOW
def test_fidelity_always_in_unit_interval(time_us, quanta):
    fidelity = two_qubit_fidelity(time_us, quanta, NoiseParameters())
    assert 0.0 <= fidelity <= 1.0


@given(fidelities=st.lists(st.floats(0.5, 1.0), min_size=1, max_size=200))
@SLOW
def test_accumulator_matches_direct_product(fidelities):
    accumulator = SuccessRateAccumulator()
    product = 1.0
    for fidelity in fidelities:
        accumulator.add(fidelity)
        product *= fidelity
    assert math.isclose(accumulator.success_rate, product, rel_tol=1e-9)
    assert accumulator.worst_gate_fidelity == min(fidelities)


@given(moves=st.integers(0, 500), chain=st.integers(1, 256))
@SLOW
def test_heating_monotone_in_moves_and_chain_length(moves, chain):
    from repro.noise.heating import quanta_after_moves

    params = NoiseParameters()
    assert quanta_after_moves(moves + 1, chain, params) >= quanta_after_moves(
        moves, chain, params
    )
    assert quanta_after_moves(moves, chain + 1, params) >= quanta_after_moves(
        moves, chain, params
    )
