"""Pruned vs exhaustive tape-scheduler scan equivalence.

The pruned `_best_position` scan (candidates from ready-set extents plus a
containment upper bound) must choose exactly the segments of the original
exhaustive Algorithm 2 scan — including the distance and leftmost
tie-breaks — on the full workload suite and on random routed circuits.
"""

import pytest

from repro.arch.tilt import TiltDevice
from repro.circuits.random import random_circuit
from repro.compiler.decompose import decompose_to_native
from repro.compiler.schedule import SchedulerConfig, TapeScheduler
from repro.compiler.swap_linq import LinqSwapInserter
from repro.workloads.suite import build_workload, standard_suite

WORKLOADS = [spec.name for spec in standard_suite()]


def _routed(circuit, device):
    native = decompose_to_native(circuit.without(["barrier"]))
    return LinqSwapInserter(device).route(native).circuit


def _schedule(routed, device, *, exhaustive, **kwargs):
    config = SchedulerConfig(exhaustive_scan=exhaustive, **kwargs)
    return TapeScheduler(device, config).schedule(routed)


@pytest.mark.parametrize("name", WORKLOADS)
def test_suite_segments_identical(name):
    """Same segments as the exhaustive scan on every Table II workload."""
    circuit = build_workload(name, "small")
    device = TiltDevice(num_qubits=circuit.num_qubits,
                        head_size=max(4, circuit.num_qubits // 4))
    routed = _routed(circuit, device)
    exhaustive = _schedule(routed, device, exhaustive=True)
    pruned = _schedule(routed, device, exhaustive=False)
    assert pruned.segments == exhaustive.segments


@pytest.mark.parametrize("seed", range(5))
def test_random_circuit_segments_identical(seed):
    device = TiltDevice(num_qubits=12, head_size=4)
    routed = _routed(random_circuit(12, 60, seed=seed), device)
    exhaustive = _schedule(routed, device, exhaustive=True)
    pruned = _schedule(routed, device, exhaustive=False)
    assert pruned.segments == exhaustive.segments


@pytest.mark.parametrize("prefer_near", [True, False])
def test_tie_break_modes_identical(prefer_near):
    """Equivalence holds with and without the travel-distance tie-break."""
    circuit = build_workload("QFT", "small")
    device = TiltDevice(num_qubits=circuit.num_qubits, head_size=4)
    routed = _routed(circuit, device)
    exhaustive = _schedule(routed, device, exhaustive=True,
                           prefer_near_moves=prefer_near)
    pruned = _schedule(routed, device, exhaustive=False,
                       prefer_near_moves=prefer_near)
    assert pruned.segments == exhaustive.segments


def test_initial_position_identical():
    circuit = build_workload("BV", "small")
    device = TiltDevice(num_qubits=circuit.num_qubits, head_size=4)
    routed = _routed(circuit, device)
    position = device.num_head_positions // 2
    exhaustive = _schedule(routed, device, exhaustive=True,
                           initial_position=position)
    pruned = _schedule(routed, device, exhaustive=False,
                       initial_position=position)
    assert pruned.segments == exhaustive.segments
