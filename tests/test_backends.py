"""Backend invariance: serial, process-pool and async-local execution
produce byte-identical spec keys, results and merged ShotResults."""

import dataclasses

import pytest

from repro.arch.ideal import IdealTrappedIonDevice
from repro.arch.qccd import QccdDevice
from repro.arch.tilt import TiltDevice
from repro.compiler.pipeline import CompilerConfig
from repro.exceptions import ReproError
from repro.exec import (
    AsyncLocalBackend,
    ExecutionEngine,
    JobSpec,
    ProcessPoolBackend,
    SerialBackend,
    resolve_backend,
    run_sampled_job,
    spec_key,
)
from repro.exec.backends import BACKEND_ENV_VAR
from repro.exec.engine import reset_default_engine
from repro.noise.parameters import NoiseParameters
from repro.workloads.bv import bv_workload
from repro.workloads.qft import qft_workload

BACKEND_NAMES = ("serial", "process", "async")


@pytest.fixture(autouse=True)
def _fresh_default_engine():
    reset_default_engine()
    yield
    reset_default_engine()


def _mixed_batch() -> list[JobSpec]:
    """Analytic TILT points + QCCD + ideal + sampled jobs, in one batch.

    Mixing cheap analytic jobs with sampled (``shots > 0``) ones is the
    straggler scenario the process backend's chunked dispatch targets;
    the invariance assertions hold regardless of how dispatch reorders
    the work.
    """
    tilt = TiltDevice(num_qubits=16, head_size=8)
    noise = NoiseParameters.paper_defaults()
    specs = [
        JobSpec(
            circuit=bv_workload(16), device=tilt,
            config=CompilerConfig(max_swap_len=length, mapper="trivial"),
            noise=noise, label=f"tilt-{length}",
        )
        for length in (7, 6, 5)
    ]
    specs.append(JobSpec(
        circuit=qft_workload(12),
        device=QccdDevice(num_qubits=12, trap_capacity=5),
        backend="qccd", noise=noise, label="qccd",
    ))
    specs.append(JobSpec(
        circuit=bv_workload(8), device=IdealTrappedIonDevice(num_qubits=8),
        backend="ideal", noise=noise, label="ideal",
    ))
    specs.extend(
        JobSpec(
            circuit=qft_workload(6),
            device=IdealTrappedIonDevice(num_qubits=6),
            backend="ideal", noise=noise,
            shots=96, seed=7, shot_offset=offset,
            label=f"sampled-{offset}",
        )
        for offset in (0, 96)
    )
    return specs


def _structural(result):
    """Everything about a result except per-run wall-clock timings."""
    stats = result.stats
    if stats is not None:
        stats = dataclasses.replace(
            stats, time_decompose_s=0, time_swap_s=0, time_schedule_s=0,
        )
    return (result.key, result.label, stats, result.simulation, result.shot)


class TestBackendInvariance:
    def test_mixed_batch_bit_identical_across_backends(self):
        specs = _mixed_batch()
        keys = [spec_key(spec) for spec in specs]
        reference = None
        for name in BACKEND_NAMES:
            engine = ExecutionEngine(workers=2, backend=name)
            results = engine.run(specs)
            assert [result.key for result in results] == keys
            structural = [_structural(result) for result in results]
            if reference is None:
                reference = structural
            else:
                assert structural == reference, f"backend {name} diverged"

    def test_sampled_job_merge_invariant_across_backends(self):
        spec = JobSpec(
            circuit=qft_workload(6),
            device=IdealTrappedIonDevice(num_qubits=6),
            backend="ideal", noise=NoiseParameters.paper_defaults(),
            shots=256, seed=11,
        )
        merged = {
            name: run_sampled_job(
                spec, shards=4, exec_backend=name,
                engine=ExecutionEngine(workers=2),
            )
            for name in BACKEND_NAMES
        }
        assert merged["process"].shot == merged["serial"].shot
        assert merged["async"].shot == merged["serial"].shot
        assert (merged["process"].key == merged["async"].key
                == merged["serial"].key == spec_key(spec))

    def test_per_batch_backend_override(self):
        engine = ExecutionEngine(workers=2)  # would default to the pool
        specs = _mixed_batch()[:3]
        serial = engine.run(specs, backend="serial")
        override = engine.run(specs, backend="async")
        # second run is all cache hits, so the override exercised lookup
        assert engine.stats.cache_hits == len(specs)
        assert [r.simulation for r in override] == [
            r.simulation for r in serial
        ]


class TestBackendSelection:
    def test_default_follows_worker_count(self):
        assert isinstance(resolve_backend(None, 1), SerialBackend)
        assert isinstance(resolve_backend(None, 4), ProcessPoolBackend)

    def test_names_resolve(self):
        assert isinstance(resolve_backend("serial", 4), SerialBackend)
        assert isinstance(resolve_backend("process", 4), ProcessPoolBackend)
        assert isinstance(resolve_backend("async", 4), AsyncLocalBackend)

    def test_instance_passes_through(self):
        backend = AsyncLocalBackend(workers=3)
        assert resolve_backend(backend, 1) is backend

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "async")
        assert isinstance(resolve_backend(None, 1), AsyncLocalBackend)
        monkeypatch.setenv(BACKEND_ENV_VAR, "nope")
        with pytest.raises(ReproError):
            resolve_backend(None, 1)

    def test_unknown_name_rejected(self):
        with pytest.raises(ReproError):
            resolve_backend("magic", 1)

    def test_describe_backend(self):
        assert ExecutionEngine(workers=1).describe_backend() == "serial"
        assert "process" in ExecutionEngine(workers=4).describe_backend()
        assert "async" in ExecutionEngine(
            workers=2, backend="async"
        ).describe_backend()


class TestProcessPoolDispatch:
    def test_plan_chunks_heavy_first_then_light_chunks(self):
        light = [
            (f"light-{i}", spec) for i, spec in enumerate(_mixed_batch()[:3])
        ]
        device = IdealTrappedIonDevice(num_qubits=6)
        heavy = [
            (f"heavy-{shots}", JobSpec(
                circuit=qft_workload(6), device=device, backend="ideal",
                shots=shots, seed=1,
            ))
            for shots in (50, 200, 100)
        ]
        backend = ProcessPoolBackend(workers=2, chunk_size=2)
        chunks = backend.plan_chunks(light + heavy)
        # sampled jobs lead, longest first, one per chunk
        assert [chunk[0][0] for chunk in chunks[:3]] == [
            "heavy-200", "heavy-100", "heavy-50",
        ]
        assert all(len(chunk) == 1 for chunk in chunks[:3])
        # analytic jobs follow in chunks of chunk_size, order preserved
        assert [[job[0] for job in chunk] for chunk in chunks[3:]] == [
            ["light-0", "light-1"], ["light-2"],
        ]

    def test_chunk_size_validated(self):
        with pytest.raises(ReproError):
            ProcessPoolBackend(workers=2, chunk_size=0)
