"""Tests for the QFT workload."""

import math

import numpy as np
import pytest

from repro.circuits.unitary import allclose_up_to_global_phase, circuit_unitary
from repro.exceptions import CircuitError
from repro.workloads.qft import qft, qft_workload


def dft_matrix(n_qubits: int) -> np.ndarray:
    """The exact discrete-Fourier-transform unitary on n qubits."""
    dim = 2**n_qubits
    omega = np.exp(2j * math.pi / dim)
    return np.array(
        [[omega ** (row * col) for col in range(dim)] for row in range(dim)]
    ) / math.sqrt(dim)


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_matches_dft_with_swaps(self, n):
        circuit = qft(n, with_final_swaps=True)
        assert allclose_up_to_global_phase(circuit_unitary(circuit), dft_matrix(n))

    def test_without_swaps_is_bit_reversed_dft(self):
        n = 3
        unitary = circuit_unitary(qft(n))
        reversal = np.zeros((8, 8))
        for i in range(8):
            reversed_bits = int(format(i, "03b")[::-1], 2)
            reversal[reversed_bits, i] = 1.0
        assert allclose_up_to_global_phase(reversal @ unitary, dft_matrix(n))


class TestStructure:
    def test_two_qubit_gate_count(self):
        n = 64
        circuit = qft_workload(n)
        assert circuit.count_ops()["cp"] == n * (n - 1) // 2

    def test_cx_level_count_matches_table2(self):
        from repro.compiler.decompose import decompose_to_cx

        assert decompose_to_cx(qft_workload(64)).num_two_qubit_gates() == 4032

    def test_approximation_drops_small_rotations(self):
        exact = qft(8)
        approximate = qft(8, approximation_degree=4)
        assert len(approximate) < len(exact)

    def test_final_swaps_count(self):
        circuit = qft(6, with_final_swaps=True)
        assert circuit.count_ops()["swap"] == 3

    def test_measure_flag(self):
        assert qft(3, measure=True).count_ops()["measure"] == 3

    def test_invalid_arguments(self):
        with pytest.raises(CircuitError):
            qft(0)
        with pytest.raises(CircuitError):
            qft(3, approximation_degree=-1)
