"""Tests for the noisy architectural simulators (TILT and Ideal TI)."""

import pytest

from repro.arch.ideal import IdealTrappedIonDevice
from repro.arch.tilt import TiltDevice
from repro.compiler.pipeline import CompilerConfig, compile_for_tilt
from repro.exceptions import SimulationError
from repro.noise.parameters import NoiseParameters
from repro.sim.ideal_sim import IdealSimulator
from repro.sim.tilt_sim import TiltSimulator
from repro.workloads.bv import bv_workload
from repro.workloads.qaoa import qaoa_workload
from repro.workloads.qft import qft_workload


class TestTiltSimulator:
    def test_noiseless_program_has_unit_success(self, tilt16, noiseless):
        compiled = compile_for_tilt(bv_workload(16), tilt16)
        result = TiltSimulator(tilt16, noiseless).run(compiled)
        assert result.success_rate == pytest.approx(1.0)
        assert result.execution_time_us > 0

    def test_accepts_program_or_compile_result(self, tilt16, noise):
        compiled = compile_for_tilt(bv_workload(16), tilt16)
        simulator = TiltSimulator(tilt16, noise)
        from_result = simulator.run(compiled)
        from_program = simulator.run(compiled.program, circuit_name="bv")
        assert from_result.success_rate == pytest.approx(from_program.success_rate)

    def test_metadata_matches_compilation(self, tilt16, noise):
        compiled = compile_for_tilt(qft_workload(16), tilt16)
        result = TiltSimulator(tilt16, noise).run(compiled)
        assert result.num_moves == compiled.stats.num_moves
        assert result.move_distance_um == pytest.approx(
            compiled.stats.move_distance_um
        )
        assert result.architecture == "TILT head 8"
        assert 0.0 <= result.success_rate <= 1.0

    def test_more_heating_lowers_success(self, tilt16):
        compiled = compile_for_tilt(qft_workload(16), tilt16)
        cold = TiltSimulator(
            tilt16, NoiseParameters(shuttle_quanta_reference=0.0)
        ).run(compiled)
        hot = TiltSimulator(
            tilt16, NoiseParameters(shuttle_quanta_reference=5.0)
        ).run(compiled)
        assert hot.log10_success_rate < cold.log10_success_rate

    def test_execution_time_includes_tape_travel(self, tilt16, noise):
        compiled = compile_for_tilt(qft_workload(16), tilt16)
        slow = TiltSimulator(
            tilt16, noise.with_overrides(shuttle_speed_um_per_us=0.1)
        ).run(compiled)
        fast = TiltSimulator(
            tilt16, noise.with_overrides(shuttle_speed_um_per_us=10.0)
        ).run(compiled)
        assert slow.execution_time_us > fast.execution_time_us

    def test_chain_length_mismatch_rejected(self, tilt16, noise):
        other_device = TiltDevice(num_qubits=12, head_size=6)
        compiled = compile_for_tilt(bv_workload(12), other_device)
        with pytest.raises(SimulationError):
            TiltSimulator(tilt16, noise).run(compiled)

    def test_success_ratio_helper(self, tilt16, noise):
        compiled = compile_for_tilt(qft_workload(16), tilt16)
        result = TiltSimulator(tilt16, noise).run(compiled)
        assert result.success_ratio_over(result) == pytest.approx(1.0)
        assert "TILT" in result.summary()

    def test_success_ratio_over_zero_denominator_raises(self, tilt16, noise):
        import dataclasses

        compiled = compile_for_tilt(qft_workload(16), tilt16)
        result = TiltSimulator(tilt16, noise).run(compiled)
        dead = dataclasses.replace(
            result, success_rate=0.0, log10_success_rate=float("-inf")
        )
        with pytest.raises(SimulationError):
            result.success_ratio_over(dead)
        with pytest.raises(SimulationError):
            dead.success_ratio_over(dead)
        # a zero numerator over a live denominator is fine (ratio 0)
        assert dead.success_ratio_over(result) == 0.0

    def test_success_ratio_over_extreme_gap_saturates(self, tilt16, noise):
        import dataclasses

        compiled = compile_for_tilt(qft_workload(16), tilt16)
        result = TiltSimulator(tilt16, noise).run(compiled)
        tiny = dataclasses.replace(result, log10_success_rate=-400.0)
        assert result.success_ratio_over(tiny) == float("inf")


class TestIdealSimulator:
    def test_noiseless_success_is_one(self, ideal16, noiseless):
        result = IdealSimulator(ideal16, noiseless).run(bv_workload(16))
        assert result.success_rate == pytest.approx(1.0)

    def test_no_moves_ever(self, ideal16, noise):
        result = IdealSimulator(ideal16, noise).run(qft_workload(16))
        assert result.num_moves == 0
        assert result.move_distance_um == 0.0

    def test_ideal_beats_tilt_on_routed_workloads(self, tilt16, ideal16, noise):
        circuit = qft_workload(16)
        tilt_result = TiltSimulator(tilt16, noise).run(
            compile_for_tilt(circuit, tilt16)
        )
        ideal_result = IdealSimulator(ideal16, noise).run(circuit)
        assert ideal_result.log10_success_rate > tilt_result.log10_success_rate

    def test_too_wide_circuit_rejected(self, noise):
        device = IdealTrappedIonDevice(num_qubits=8)
        with pytest.raises(SimulationError):
            IdealSimulator(device, noise).run(bv_workload(16))

    def test_already_native_flag(self, ideal16, noise):
        from repro.compiler.decompose import (
            decompose_to_native,
            merge_adjacent_rotations,
        )

        native = merge_adjacent_rotations(
            decompose_to_native(qaoa_workload(16, rounds=1))
        )
        direct = IdealSimulator(ideal16, noise).run(native, already_native=True)
        recompiled = IdealSimulator(ideal16, noise).run(qaoa_workload(16, rounds=1))
        assert direct.log10_success_rate == pytest.approx(
            recompiled.log10_success_rate, rel=1e-6
        )


class TestCrossArchitectureShape:
    def test_larger_head_never_hurts(self, noise):
        circuit = qft_workload(16)
        results = {}
        for head in (4, 8):
            device = TiltDevice(num_qubits=16, head_size=head)
            compiled = compile_for_tilt(circuit, device)
            results[head] = TiltSimulator(device, noise).run(compiled)
        assert results[8].log10_success_rate >= results[4].log10_success_rate

    def test_linq_router_beats_baseline_router(self, tilt16, noise):
        circuit = qft_workload(16)
        linq = compile_for_tilt(circuit, tilt16,
                                CompilerConfig(mapper="trivial"))
        baseline = compile_for_tilt(
            circuit, tilt16, CompilerConfig(mapper="trivial", router="baseline")
        )
        simulator = TiltSimulator(tilt16, noise)
        assert (simulator.run(linq).log10_success_rate
                >= simulator.run(baseline).log10_success_rate)
