"""Bit-compatibility tests for the batched per-shot RNG kernels.

:mod:`repro.sim.rng_kernels` re-implements ``np.random.default_rng((seed,
shot))`` — the SeedSequence entropy mixing and the PCG64 stream — as array
kernels over a lane axis.  The sampler's determinism contract rests on
these kernels being *bit-identical* to the per-shot generators they
replace, so every entry point is pinned here against the real NumPy
implementation.
"""

import numpy as np
import pytest

from repro.sim.rng_kernels import (
    MAX_LANE_SEED,
    MAX_LANE_SHOT,
    ShotLanes,
    lanes_supported,
)
from repro.sim.stochastic import shot_rng

#: Entropy shapes that exercise every coercion branch: one-word seeds,
#: two-word seeds, and the extreme corners the kernels still model.
SEEDS = [0, 1, 2021, 2**32 - 1, 2**32, 2**40 + 12345, MAX_LANE_SEED]
SHOT_INDICES = [0, 1, 2, 97, 1024, MAX_LANE_SHOT]


class TestDrawBitCompatibility:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_draws_match_per_shot_generators(self, seed):
        shots = np.array(SHOT_INDICES, dtype=np.uint64)
        lanes = ShotLanes(seed, shots)
        references = [shot_rng(seed, int(shot)) for shot in shots]
        for _ in range(7):
            draws = lanes.draw()
            expected = [rng.random() for rng in references]
            assert draws.tolist() == expected

    def test_subset_draws_advance_only_selected_lanes(self):
        seed = 99
        shots = np.arange(6, dtype=np.uint64)
        lanes = ShotLanes(seed, shots)
        references = [shot_rng(seed, int(shot)) for shot in shots]
        subsets = [np.array([0, 2, 4]), np.array([1, 5]),
                   np.array([0, 1, 2, 3, 4, 5]), np.array([3])]
        for subset in subsets:
            draws = lanes.draw(subset)
            expected = [references[lane].random() for lane in subset.tolist()]
            assert draws.tolist() == expected
        # the lanes left out of a subset never advanced: their next
        # full-width draw continues each reference stream exactly
        assert lanes.draw().tolist() == [rng.random() for rng in references]

    def test_duplicate_shot_indices_share_a_stream(self):
        # two lanes over the same global shot index draw the same values
        lanes = ShotLanes(5, np.array([11, 11], dtype=np.uint64))
        for _ in range(3):
            first, second = lanes.draw().tolist()
            assert first == second


class TestMidStreamGenerators:
    def test_generator_continues_the_lane_stream(self):
        seed, shot = 7, 42
        lanes = ShotLanes(seed, np.array([shot], dtype=np.uint64))
        reference = shot_rng(seed, shot)
        for _ in range(3):
            assert lanes.draw()[0] == reference.random()
        generator = lanes.generator(0)
        assert generator.random(5).tolist() == reference.random(5).tolist()
        # non-double draws continue bit-identically too
        assert generator.integers(0, 1000, 4).tolist() == \
            reference.integers(0, 1000, 4).tolist()

    def test_borrow_generator_matches_fresh_generator(self):
        seed = 13
        lanes = ShotLanes(seed, np.array([3, 8], dtype=np.uint64))
        lanes.draw()
        references = [shot_rng(seed, 3), shot_rng(seed, 8)]
        for rng in references:
            rng.random()
        # borrowing re-points one shared generator at each lane in turn
        for lane, rng in enumerate(references):
            borrowed = lanes.borrow_generator(lane)
            assert borrowed.random() == rng.random()
            assert borrowed.integers(0, 16) == rng.integers(0, 16)

    def test_generator_hand_off_is_independent_per_lane(self):
        # a real generator (not the borrowed one) stays valid while other
        # lanes are borrowed afterwards
        lanes = ShotLanes(1, np.array([0, 1], dtype=np.uint64))
        lanes.draw()
        independent = lanes.generator(0)
        lanes.borrow_generator(1)
        reference = shot_rng(1, 0)
        reference.random()
        assert independent.random() == reference.random()


class TestSupportBounds:
    def test_supported_range(self):
        assert lanes_supported(0, 0)
        assert lanes_supported(MAX_LANE_SEED, MAX_LANE_SHOT)
        assert not lanes_supported(MAX_LANE_SEED + 1, 0)
        assert not lanes_supported(0, MAX_LANE_SHOT + 1)
        assert not lanes_supported(-1, 0)
        assert not lanes_supported(0, -1)

    def test_out_of_range_entropy_is_rejected(self):
        with pytest.raises(ValueError):
            ShotLanes(MAX_LANE_SEED + 1, np.array([0], dtype=np.uint64))
        with pytest.raises(ValueError):
            ShotLanes(0, np.array([MAX_LANE_SHOT + 1], dtype=np.uint64))
        with pytest.raises(ValueError):
            ShotLanes(0, np.zeros((2, 2), dtype=np.uint64))

    def test_sampler_falls_back_past_the_lane_range(self):
        # seeds beyond the modelled entropy shape silently route to the
        # per-shot reference implementation instead of failing
        from repro.noise.channels import ErrorSite
        from repro.sim.stochastic import StochasticSampler

        sampler = StochasticSampler(
            architecture="x", circuit_name="y",
            sites=[ErrorSite(index=0, kind="pauli1", qubits=(0,),
                             probability=0.25)],
        )
        sampler.run(10, seed=3)
        assert sampler.last_stats["mode"] == "vectorized"
        sampler.run(10, seed=MAX_LANE_SEED + 1)
        assert sampler.last_stats["mode"] == "exhaustive"
