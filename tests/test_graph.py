"""Unit tests for repro.devtools.graph (import/call graphs, reachability).

Two layers:

* structural tests over the *real* ``src/`` tree — the worker-reachable
  set must include ``execute_spec`` from each backend's ``submit``
  (that is the property RPR007/RPR008 key off), the driver layers must
  stay out of it, and the repo's import graph must be acyclic;
* synthetic fixtures (``treat-as`` corpus style) for the parts easier
  to pin in isolation: submodule-import refinement, cycle detection and
  its function-scoped-import escape hatch, and name/alias resolution.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.core import discover_files, load_context
from repro.devtools.graph import (
    MODULE_BODY,
    WORKER_ROOTS,
    build_graph,
    module_name_for,
    package_of,
)

REPO_ROOT = Path(__file__).parent.parent


def graph_of(paths, root=REPO_ROOT):
    contexts = []
    for path in discover_files(paths):
        ctx, meta = load_context(path, root)
        assert not meta, [v.format() for v in meta]
        if ctx is not None:
            contexts.append(ctx)
    return build_graph(contexts)


@pytest.fixture(scope="module")
def repo_graph():
    return graph_of([REPO_ROOT / "src"])


class TestNaming:
    def test_module_name_for(self):
        assert (module_name_for("src/repro/exec/backends.py")
                == "repro.exec.backends")
        assert module_name_for("src/repro/__init__.py") == "repro"
        assert (module_name_for("src/repro/sim/__init__.py")
                == "repro.sim")
        assert module_name_for("tests/test_lint.py") is None
        assert module_name_for("src/other/pkg.py") is None

    def test_package_of(self):
        assert package_of("repro.exec.backends") == "exec"
        assert package_of("repro.exceptions") == "exceptions"
        assert package_of("repro") == ""


class TestRepoGraph:
    def test_every_src_module_is_mapped(self, repo_graph):
        assert "repro.exec.backends" in repo_graph.modules
        assert "repro.sim.stochastic" in repo_graph.modules
        info = repo_graph.modules["repro.exec.backends"]
        assert info.package == "exec"
        assert info.ctx.real_rel == "src/repro/exec/backends.py"

    def test_import_edges_point_at_submodules(self, repo_graph):
        """``from repro.analysis import experiments`` lands on the
        submodule, not the package __init__ — otherwise the standard
        package layout would read as an import cycle."""
        edges = repo_graph.import_edges["repro.analysis.convergence"]
        assert "repro.analysis.experiments" in edges
        assert "repro.analysis" not in edges

    def test_repo_import_graph_is_acyclic(self, repo_graph):
        assert repo_graph.import_cycles() == []

    def test_all_worker_roots_present(self, repo_graph):
        expected = {f"{mod}.{qual}" for mod, qual in WORKER_ROOTS}
        assert set(repo_graph.worker_roots) == expected

    @pytest.mark.parametrize("backend_submit", [
        "repro.exec.backends.SerialBackend.submit",
        "repro.exec.backends.ProcessPoolBackend.submit",
        "repro.exec.backends.AsyncLocalBackend.submit",
    ])
    def test_execute_spec_reachable_from_every_backend(
            self, repo_graph, backend_submit):
        """The acceptance property: each backend's submit reaches the
        task entry point — serially by direct call, the pool backends
        through the function object handed to the executor."""
        reach = repo_graph.reachable_from([backend_submit])
        assert "repro.exec.backends.execute_spec" in reach

    def test_worker_reachable_covers_sim_but_not_drivers(
            self, repo_graph):
        reach = repo_graph.worker_reachable
        assert "repro.sim.stochastic.shot_rng" in reach
        assert "repro.obs.trace.worker_recorder" in reach
        assert "repro.exec.engine.ExecutionEngine.run" not in reach
        assert not any(node.startswith(("repro.search.",
                                        "repro.analysis.",
                                        "repro.devtools."))
                       for node in reach)

    def test_module_body_not_a_worker_root(self, repo_graph):
        """Import-time code is the sanctioned registration channel —
        it must never be pulled into the worker-reachable set."""
        assert not any(node.endswith(MODULE_BODY)
                       for node in repo_graph.worker_reachable)

    def test_to_json_shape_and_determinism(self, repo_graph):
        payload = repo_graph.to_json()
        assert payload["version"] == 1
        assert payload["import_cycles"] == []
        assert payload["worker_reachable"] == sorted(
            repo_graph.worker_reachable
        )
        assert payload == repo_graph.to_json()


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return path


class TestSyntheticGraphs:
    def test_two_module_cycle_detected(self, tmp_path):
        a = _write(tmp_path, "a.py",
                   "# repro-lint: treat-as=src/repro/noise/a.py\n"
                   "from repro.noise.b import x\n")
        b = _write(tmp_path, "b.py",
                   "# repro-lint: treat-as=src/repro/noise/b.py\n"
                   "from repro.noise.a import y\n")
        graph = graph_of([a, b], root=tmp_path)
        assert graph.import_cycles() == [
            ("repro.noise.a", "repro.noise.b")
        ]

    def test_function_scoped_import_breaks_cycle(self, tmp_path):
        a = _write(tmp_path, "a.py",
                   "# repro-lint: treat-as=src/repro/noise/a.py\n"
                   "from repro.noise.b import x\n")
        b = _write(tmp_path, "b.py",
                   "# repro-lint: treat-as=src/repro/noise/b.py\n"
                   "def late():\n"
                   "    from repro.noise.a import y\n"
                   "    return y\n")
        graph = graph_of([a, b], root=tmp_path)
        assert graph.import_cycles() == []
        # the function-scoped edge still exists for layering purposes
        assert ("repro.noise.a"
                in graph.import_edges["repro.noise.b"])
        assert ("repro.noise.a"
                not in graph.top_level_import_edges["repro.noise.b"])

    def test_self_import_is_not_a_cycle(self, tmp_path):
        """A module importing itself is a runtime no-op (already in
        sys.modules) — the graph drops self-edges, so no cycle."""
        a = _write(tmp_path, "a.py",
                   "# repro-lint: treat-as=src/repro/noise/a.py\n"
                   "import repro.noise.a\n")
        graph = graph_of([a], root=tmp_path)
        assert graph.import_cycles() == []
        assert graph.top_level_import_edges["repro.noise.a"] == ()

    def test_call_edges_through_alias_and_higher_order(self, tmp_path):
        worker = _write(
            tmp_path, "w.py",
            "# repro-lint: treat-as=src/repro/exec/backends.py\n"
            "def execute_spec(spec, key):\n"
            "    return spec\n"
            "class ProcessPoolBackend:\n"
            "    def submit(self, pool, specs):\n"
            "        return [pool.submit(execute_spec, s, 'k')"
            " for s in specs]\n",
        )
        graph = graph_of([worker], root=tmp_path)
        edges = graph.call_edges[
            "repro.exec.backends.ProcessPoolBackend.submit"
        ]
        assert "repro.exec.backends.execute_spec" in edges
        assert ("repro.exec.backends.execute_spec"
                in graph.worker_reachable)

    def test_cross_module_call_resolution(self, tmp_path):
        physics = _write(
            tmp_path, "p.py",
            "# repro-lint: treat-as=src/repro/sim/physics.py\n"
            "def shot_rng(seed, shot):\n"
            "    return (seed, shot)\n",
        )
        backend = _write(
            tmp_path, "b.py",
            "# repro-lint: treat-as=src/repro/exec/backends.py\n"
            "from repro.sim.physics import shot_rng\n"
            "def execute_spec(spec, key):\n"
            "    return shot_rng(spec, 0)\n",
        )
        graph = graph_of([physics, backend], root=tmp_path)
        assert ("repro.sim.physics.shot_rng"
                in graph.call_edges["repro.exec.backends.execute_spec"])
        assert "repro.sim.physics.shot_rng" in graph.worker_reachable

    def test_unreachable_module_stays_out(self, tmp_path):
        backend = _write(
            tmp_path, "b.py",
            "# repro-lint: treat-as=src/repro/exec/backends.py\n"
            "def execute_spec(spec, key):\n"
            "    return spec\n",
        )
        driver = _write(
            tmp_path, "d.py",
            "# repro-lint: treat-as=src/repro/search/driver.py\n"
            "def optimise():\n"
            "    return 1\n",
        )
        graph = graph_of([backend, driver], root=tmp_path)
        assert ("repro.search.driver.optimise"
                not in graph.worker_reachable)
        assert ("repro.exec.backends.execute_spec"
                in graph.worker_reachable)
