"""Tests for gate matrices and circuit unitaries."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.gate import GATE_SPECS, Gate
from repro.circuits.unitary import (
    allclose_up_to_global_phase,
    circuit_unitary,
    gate_matrix,
)
from repro.exceptions import SimulationError


def _unitary_gates():
    for name, (num_qubits, num_params) in GATE_SPECS.items():
        if name in ("measure", "barrier"):
            continue
        params = tuple(0.3 + 0.1 * i for i in range(num_params))
        yield Gate(name, tuple(range(num_qubits)), params)


class TestGateMatrices:
    @pytest.mark.parametrize("gate", list(_unitary_gates()),
                             ids=lambda g: g.name)
    def test_matrices_are_unitary(self, gate):
        matrix = gate_matrix(gate)
        dim = 2**gate.num_qubits
        assert matrix.shape == (dim, dim)
        assert np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-10)

    def test_measure_has_no_matrix(self):
        with pytest.raises(SimulationError):
            gate_matrix(Gate("measure", (0,)))

    def test_rz_diag_phases(self):
        matrix = gate_matrix(Gate("rz", (0,), (math.pi,)))
        assert np.allclose(np.abs(np.diag(matrix)), 1.0)

    def test_xx_quarter_pi_is_maximally_entangling(self):
        matrix = gate_matrix(Gate("xx", (0, 1), (math.pi / 4,)))
        # exp(i pi/4 XX) = (I + i XX)/sqrt(2): off-diagonal magnitude 1/sqrt(2).
        assert np.isclose(abs(matrix[0, 3]), 1 / math.sqrt(2))
        assert np.isclose(abs(matrix[0, 0]), 1 / math.sqrt(2))

    def test_cx_flips_target_when_control_set(self):
        matrix = gate_matrix(Gate("cx", (0, 1)))
        state = np.zeros(4)
        state[2] = 1.0  # |10>: control (qubit 0) set
        assert np.allclose(matrix @ state, np.eye(4)[3])

    def test_gate_and_inverse_compose_to_identity(self):
        for gate in _unitary_gates():
            product = gate_matrix(gate.inverse()) @ gate_matrix(gate)
            dim = 2**gate.num_qubits
            assert allclose_up_to_global_phase(product, np.eye(dim)), gate.name


class TestCircuitUnitary:
    def test_identity_for_empty_circuit(self):
        assert np.allclose(circuit_unitary(Circuit(2)), np.eye(4))

    def test_bell_circuit_unitary(self, bell_circuit):
        unitary = circuit_unitary(bell_circuit)
        state = unitary[:, 0]
        assert np.allclose(np.abs(state) ** 2, [0.5, 0, 0, 0.5])

    def test_barriers_ignored(self):
        circuit = Circuit(2).h(0).barrier().h(0)
        assert allclose_up_to_global_phase(circuit_unitary(circuit), np.eye(4))

    def test_measurement_rejected(self):
        with pytest.raises(SimulationError):
            circuit_unitary(Circuit(1).measure(0))

    def test_width_cap(self):
        with pytest.raises(SimulationError):
            circuit_unitary(Circuit(13))

    def test_qubit_ordering_of_expansion(self):
        # x on qubit 1 of a 2-qubit register flips the least significant bit.
        circuit = Circuit(2).x(1)
        unitary = circuit_unitary(circuit)
        state = unitary @ np.eye(4)[0]
        assert np.allclose(np.abs(state), np.eye(4)[1])


class TestGlobalPhaseComparison:
    def test_equal_up_to_phase(self):
        a = gate_matrix(Gate("z", (0,)))
        b = np.exp(1j * 0.7) * a
        assert allclose_up_to_global_phase(a, b)

    def test_different_matrices_detected(self):
        a = gate_matrix(Gate("z", (0,)))
        b = gate_matrix(Gate("x", (0,)))
        assert not allclose_up_to_global_phase(a, b)

    def test_shape_mismatch(self):
        assert not allclose_up_to_global_phase(np.eye(2), np.eye(4))
