"""Tests for the repro.search design-space exploration subsystem."""

import json
import math

import pytest

from repro.arch.qccd import QccdDevice
from repro.arch.tilt import TiltDevice
from repro.core.sweep import max_swap_len_sweep
from repro.exceptions import ReproError
from repro.exec import ExecutionEngine
from repro.exec.engine import reset_default_engine
from repro.noise.parameters import NoiseParameters
from repro.search import (
    GridStrategy,
    RandomStrategy,
    SearchPoint,
    SearchResult,
    SearchSpace,
    SuccessiveHalvingStrategy,
    architecture_knob,
    config_knob,
    device_knob,
    noise_knob,
    pareto_front,
    run_search,
    scenario_knob,
    search_result_from_json,
)
from repro.workloads.bv import bv_workload
from repro.workloads.qft import qft_workload


@pytest.fixture(autouse=True)
def _fresh_default_engine():
    """Keep the process-wide engine out of these tests."""
    reset_default_engine()
    yield
    reset_default_engine()


def _qft_space(**overrides) -> SearchSpace:
    """The acceptance space: QFT-16 on a 16-ion tape with an 8-laser head."""
    settings = dict(
        circuit=qft_workload(16),
        device=TiltDevice(num_qubits=16, head_size=8),
        knobs=[config_knob("max_swap_len", [7, 6, 5, 4])],
        config=None,
        noise=NoiseParameters.paper_defaults(),
    )
    settings.update(overrides)
    return SearchSpace(**settings)


def _point(candidate, log10, time_s, swaps, moves=0) -> SearchPoint:
    return SearchPoint(
        candidate=candidate, assignments={"k": str(candidate[0])}, shots=0,
        success_rate=10.0 ** log10 if math.isfinite(log10) else 0.0,
        log10_success=log10, execution_time_s=time_s,
        num_swaps=swaps, num_moves=moves,
    )


class TestSearchSpace:
    def test_size_and_candidates(self):
        space = _qft_space(knobs=[
            config_knob("max_swap_len", [7, 5]),
            config_knob("mapper", ["trivial", "greedy"]),
        ])
        assert space.size == 4
        assert list(space.candidates()) == [(0, 0), (0, 1), (1, 0), (1, 1)]
        assert space.labels((1, 0)) == {"max_swap_len": "5",
                                        "mapper": "trivial"}
        assert space.describe((0, 1)) == "max_swap_len=7, mapper=greedy"

    def test_duplicate_knob_names_rejected(self):
        with pytest.raises(ReproError):
            _qft_space(knobs=[config_knob("max_swap_len", [7]),
                              config_knob("max_swap_len", [5])])

    def test_invalid_combinations_are_skipped_not_fatal(self):
        # a 24-laser head cannot sit on a 16-ion tape: invalid, not fatal
        space = _qft_space(knobs=[device_knob("head_size", [8, 24])])
        assert not space.is_valid((1,))
        assert space.valid_candidates() == [(0,)]

    def test_device_knob_unknown_on_candidate_device_class_is_invalid(self):
        # regression: head_size on a QccdDevice candidate (an
        # architecture knob composed with a geometry knob) used to raise
        # TypeError out of valid_candidates() instead of being skipped
        space = SearchSpace(
            circuit=qft_workload(16),
            device=TiltDevice(num_qubits=16, head_size=8),
            knobs=[
                architecture_knob({
                    "TILT": ("tilt", TiltDevice(num_qubits=16, head_size=8)),
                    "QCCD": ("qccd", QccdDevice(num_qubits=16,
                                                trap_capacity=5)),
                }),
                device_knob("head_size", [8, 6]),
            ],
        )
        assert space.valid_candidates() == [(0, 0), (0, 1)]

    def test_device_narrower_than_circuit_is_invalid(self):
        # regression: shrinking the tape below the circuit width used to
        # pass is_valid and abort the search with CompilationError
        # inside an engine worker
        space = _qft_space(knobs=[device_knob("num_qubits", [16, 12])])
        assert space.valid_candidates() == [(0,)]

    def test_cross_knob_swap_len_vs_head_geometry_is_invalid(self):
        # regression: max_swap_len=7 on a 6-laser head used to pass
        # is_valid and blow up with RoutingError inside an engine worker
        space = _qft_space(knobs=[
            config_knob("max_swap_len", [7, 4]),
            device_knob("head_size", [8, 6]),
        ])
        assert space.is_valid((0, 0))      # 7 under head 8 (span 7)
        assert not space.is_valid((0, 1))  # 7 under head 6 (span 5)
        assert space.is_valid((1, 1))      # 4 under head 6
        result = run_search(space, GridStrategy(),
                            engine=ExecutionEngine(workers=1))
        assert len(result.points) == 3

    def test_build_spec_matches_sweep_spec(self):
        from repro.core.sweep import sweep_job
        from repro.exec import spec_key
        from repro.compiler.pipeline import CompilerConfig

        space = _qft_space()
        spec = space.build_spec((1,))
        expected = sweep_job(
            space.circuit, space.device,
            CompilerConfig().with_overrides(max_swap_len=6),
            space.noise,
        )
        assert spec_key(spec) == spec_key(expected)

    def test_device_and_noise_knobs_apply(self):
        space = _qft_space(knobs=[
            device_knob("head_size", [8, 6]),
            noise_knob("tilt_cooling_interval_moves", [0, 4]),
        ])
        spec = space.build_spec((1, 1))
        assert spec.device.head_size == 6
        assert spec.noise.tilt_cooling_interval_moves == 4

    def test_qccd_trap_capacity_rederives_trap_count(self):
        space = SearchSpace(
            circuit=qft_workload(16),
            device=QccdDevice(num_qubits=16, trap_capacity=5),
            backend="qccd",
            knobs=[device_knob("trap_capacity", [5, 9])],
        )
        assert space.build_spec((0,)).device.num_traps == 4
        assert space.build_spec((1,)).device.num_traps == 2

    def test_architecture_knob_switches_backend_and_device(self):
        space = SearchSpace(
            circuit=qft_workload(16),
            device=TiltDevice(num_qubits=16, head_size=8),
            knobs=[architecture_knob({
                "TILT head 8": ("tilt", TiltDevice(num_qubits=16, head_size=8)),
                "QCCD cap 5": ("qccd", QccdDevice(num_qubits=16,
                                                  trap_capacity=5)),
            })],
        )
        tilt_spec = space.build_spec((0,))
        qccd_spec = space.build_spec((1,))
        assert tilt_spec.backend == "tilt"
        assert qccd_spec.backend == "qccd"
        assert isinstance(qccd_spec.device, QccdDevice)
        assert qccd_spec.config is None  # compiler knob dropped off-TILT

    def test_scenario_knob_validates_names(self):
        with pytest.raises(ReproError):
            scenario_knob(["baseline", "not_a_scenario"])

    def test_sampled_evaluation_fans_out_into_shards(self):
        space = _qft_space(shots=100, seed=3, shards=4)
        specs = space.evaluation_specs((0,))
        assert len(specs) == 4
        assert sum(spec.shots for spec in specs) == 100
        assert [spec.shot_offset for spec in specs] == [0, 25, 50, 75]
        # the cheap analytic rung is always a single job
        assert len(space.evaluation_specs((0,), shots=0)) == 1


class TestParetoAndSensitivity:
    def test_pareto_front_extraction(self):
        points = [
            _point((0,), -1.0, 2.0, 10),   # dominated by (1,)
            _point((1,), -0.5, 1.0, 5),    # front
            _point((2,), -0.4, 3.0, 20),   # front (best success)
            _point((3,), -2.0, 0.5, 1),    # front (cheapest)
        ]
        front = pareto_front(points)
        assert [p.candidate for p in front] == [(1,), (2,), (3,)]

    def test_duplicate_objectives_both_survive(self):
        points = [_point((0,), -1.0, 1.0, 5), _point((1,), -1.0, 1.0, 5)]
        assert len(pareto_front(points)) == 2

    def test_best_is_highest_success_front_member(self):
        result = SearchResult(
            strategy="grid", knobs={"k": ["0", "1", "2"]},
            points=[_point((0,), -1.0, 1.0, 5), _point((1,), -0.2, 9.0, 9),
                    _point((2,), -3.0, 0.1, 1)],
        )
        assert result.best().candidate == (1,)

    def test_sensitivity_marginal_means(self):
        result = SearchResult(
            strategy="grid", knobs={"a": ["x", "y"], "b": ["p", "q"]},
            points=[
                SearchPoint((0, 0), {"a": "x", "b": "p"}, 0, 0.1, -1.0,
                            1.0, 0, 0),
                SearchPoint((0, 1), {"a": "x", "b": "q"}, 0, 0.01, -2.0,
                            1.0, 0, 0),
                SearchPoint((1, 0), {"a": "y", "b": "p"}, 0, 0.001, -3.0,
                            1.0, 0, 0),
                SearchPoint((1, 1), {"a": "y", "b": "q"}, 0, 0.0001, -4.0,
                            1.0, 0, 0),
            ],
        )
        rows = {row.knob: row for row in result.sensitivity()}
        assert rows["a"].per_value == {"x": -1.5, "y": -3.5}
        assert rows["a"].range_decades == pytest.approx(2.0)
        assert rows["b"].range_decades == pytest.approx(1.0)

    def test_sensitivity_ignores_non_finite_scores(self):
        result = SearchResult(
            strategy="grid", knobs={"a": ["x", "y"]},
            points=[_point((0,), -1.0, 1.0, 5),
                    _point((1,), float("-inf"), 1.0, 5)],
        )
        (row,) = result.sensitivity()
        assert row.per_value["x"] == -1.0
        assert row.per_value["y"] == float("-inf")
        assert row.range_decades == 0.0


class TestGridStrategy:
    def test_grid_reproduces_ad_hoc_sweep_point_for_point(self, tilt16):
        engine = ExecutionEngine(workers=1)
        circuit = bv_workload(16)
        sweep = max_swap_len_sweep(circuit, tilt16, [7, 6, 5, 4],
                                   engine=engine)
        space = SearchSpace(
            circuit=circuit, device=tilt16,
            knobs=[config_knob("max_swap_len", [7, 6, 5, 4])],
        )
        result = run_search(space, GridStrategy(), engine=engine)
        assert [
            (point.log10_success, point.num_swaps, point.num_moves,
             point.execution_time_s)
            for point in result.points
        ] == [
            (p.log10_success_rate, p.num_swaps, p.num_moves,
             p.execution_time_s)
            for p in sweep
        ]
        # identical configurations = identical content hashes: the whole
        # search is served from the sweep's cache entries
        assert result.engine_stats["cache_hit_rate"] == 1.0

    def test_grid_results_bit_identical_across_workers(self):
        space = _qft_space(shots=200, seed=2021, shards=4)
        serial = run_search(space, GridStrategy(),
                            engine=ExecutionEngine(workers=1))
        pooled = run_search(space, GridStrategy(),
                            engine=ExecutionEngine(workers=4))
        assert serial.points == pooled.points
        assert serial.rungs == pooled.rungs
        assert serial.num_jobs == pooled.num_jobs
        serial_json = serial.to_json()
        pooled_json = pooled.to_json()
        serial_json.pop("engine_stats")  # wall-clock timings may differ
        pooled_json.pop("engine_stats")
        assert serial_json == pooled_json


class TestRandomStrategy:
    def test_fixed_seed_is_invariant_to_workers_and_shards(self):
        sampled = dict(shots=120, seed=5)
        serial = run_search(
            _qft_space(shards=1, **sampled), RandomStrategy(3, seed=9),
            engine=ExecutionEngine(workers=1),
        )
        pooled = run_search(
            _qft_space(shards=4, **sampled), RandomStrategy(3, seed=9),
            engine=ExecutionEngine(workers=4),
        )
        assert [p.candidate for p in serial.points] == [
            p.candidate for p in pooled.points
        ]
        # shard split changes the work breakdown, never the scores
        assert [
            (p.success_rate, p.log10_success, p.execution_time_s)
            for p in serial.points
        ] == [
            (p.success_rate, p.log10_success, p.execution_time_s)
            for p in pooled.points
        ]

    def test_different_seeds_pick_different_candidates(self):
        space = _qft_space(knobs=[
            config_knob("max_swap_len", [7, 6, 5, 4]),
            config_knob("alpha", [0.9, 0.95, 0.98]),
        ])

        def fake_evaluate(candidates, shots):
            return [_point(candidate, -1.0, 1.0, 0)
                    for candidate in candidates]

        picks = {}
        for seed in (0, 1, 2, 3):
            points, _ = RandomStrategy(4, seed=seed).run(space, fake_evaluate)
            picks[seed] = tuple(point.candidate for point in points)
            assert len(picks[seed]) == 4
        assert len(set(picks.values())) > 1

    def test_sampling_more_than_the_lattice_degenerates_to_grid(self):
        space = _qft_space()
        result = run_search(space, RandomStrategy(100, seed=1),
                            engine=ExecutionEngine(workers=1))
        assert len(result.points) == 4


class TestSuccessiveHalving:
    def test_matches_grid_pareto_with_fewer_jobs(self):
        """The acceptance criterion: same Pareto-optimal MaxSwapLen on the
        QFT-16 / tilt-16 space, measurably fewer engine jobs."""
        space = _qft_space(shots=2000, seed=2021, shards=4)
        grid_engine = ExecutionEngine(workers=1)
        grid = run_search(space, GridStrategy(), engine=grid_engine)
        halving_engine = ExecutionEngine(workers=1)
        halving = run_search(space, SuccessiveHalvingStrategy(),
                             engine=halving_engine)
        # same winner, identical full-fidelity values for it
        assert halving.best().assignments == grid.best().assignments
        assert halving.best() == grid.best()
        # measurably fewer engine jobs, on both accountings
        assert halving.num_jobs < grid.num_jobs
        assert (halving_engine.stats.jobs_submitted
                < grid_engine.stats.jobs_submitted)
        assert (halving_engine.stats.jobs_executed
                < grid_engine.stats.jobs_executed)
        # and the survivors' sampled points match the grid's bit for bit
        grid_by_candidate = {p.candidate: p for p in grid.points}
        for point in halving.points:
            assert point == grid_by_candidate[point.candidate]

    def test_rung_schedule_recorded(self):
        space = _qft_space(shots=400, seed=1, shards=2)
        result = run_search(space, SuccessiveHalvingStrategy(),
                            engine=ExecutionEngine(workers=1))
        assert [(r.shots, r.num_candidates, r.promoted)
                for r in result.rungs] == [(0, 4, 2), (400, 2, 2)]
        # 4 analytic jobs + 2 survivors x 2 shards
        assert result.num_jobs == 8

    def test_results_bit_identical_across_workers(self):
        space = _qft_space(shots=400, seed=2021, shards=4)
        serial = run_search(space, SuccessiveHalvingStrategy(),
                            engine=ExecutionEngine(workers=1))
        pooled = run_search(space, SuccessiveHalvingStrategy(),
                            engine=ExecutionEngine(workers=4))
        assert serial.points == pooled.points
        assert serial.rungs == pooled.rungs

    def test_analytic_space_degenerates_to_single_rung(self):
        space = _qft_space()  # shots=0: nothing cheaper than full fidelity
        result = run_search(space, SuccessiveHalvingStrategy(),
                            engine=ExecutionEngine(workers=1))
        assert len(result.rungs) == 1
        assert len(result.points) == 4

    def test_invalid_rung_schedules_rejected(self):
        space = _qft_space(shots=100)
        with pytest.raises(ReproError):
            run_search(space, SuccessiveHalvingStrategy(rungs=(0, 50)),
                       engine=ExecutionEngine(workers=1))
        with pytest.raises(ReproError):
            run_search(space, SuccessiveHalvingStrategy(rungs=(50, 0, 100)),
                       engine=ExecutionEngine(workers=1))


class TestResultSerialisation:
    def test_json_round_trip(self):
        space = _qft_space(shots=150, seed=4, shards=3)
        result = run_search(space, GridStrategy(),
                            engine=ExecutionEngine(workers=1))
        payload = json.loads(json.dumps(result.to_json()))
        rebuilt = search_result_from_json(payload)
        assert rebuilt.points == result.points
        assert rebuilt.rungs == result.rungs
        assert rebuilt.num_jobs == result.num_jobs
        assert rebuilt.knobs == result.knobs
        assert rebuilt.engine_stats == result.engine_stats
        assert [p.candidate for p in rebuilt.pareto_front()] == [
            p.candidate for p in result.pareto_front()
        ]

    def test_engine_stats_delta_is_search_local(self):
        engine = ExecutionEngine(workers=1)
        space = _qft_space()
        first = run_search(space, GridStrategy(), engine=engine)
        second = run_search(space, GridStrategy(), engine=engine)
        assert first.engine_stats["jobs_executed"] == 4
        assert first.engine_stats["cache_hit_rate"] == 0.0
        # the second search reuses the first's cache; its *delta* shows it
        assert second.engine_stats["jobs_executed"] == 0
        assert second.engine_stats["cache_hit_rate"] == 1.0

    def test_engine_stats_to_dict(self):
        engine = ExecutionEngine(workers=1)
        run_search(_qft_space(), GridStrategy(), engine=engine)
        snapshot = engine.stats.to_dict()
        assert snapshot["jobs_submitted"] == 4
        assert snapshot["cache_misses"] == 4
        assert snapshot["cache_hit_rate"] == 0.0
        assert json.dumps(snapshot)  # plain JSON, no dataclasses inside


class TestScenarioThreading:
    def test_sweep_under_scenario_differs_from_baseline(self, tilt16):
        engine = ExecutionEngine(workers=1)
        circuit = bv_workload(16)
        baseline = max_swap_len_sweep(circuit, tilt16, [7, 5], engine=engine)
        stressed = max_swap_len_sweep(circuit, tilt16, [7, 5],
                                      scenario="worst_case", engine=engine)
        for base, stress in zip(baseline, stressed):
            assert stress.log10_success_rate < base.log10_success_rate
            # the structural outcome (compilation) is scenario-independent
            assert stress.num_swaps == base.num_swaps
            assert stress.num_moves == base.num_moves

    def test_comparison_specs_carry_scenario(self):
        from repro.core.comparison import comparison_specs

        specs = comparison_specs(qft_workload(16), head_sizes=(8,),
                                 qccd_trap_capacities=(5,),
                                 scenario="crosstalk")
        assert specs and all(spec.scenario == "crosstalk" for spec in specs)

    def test_compare_architectures_under_scenario(self):
        from repro.core.comparison import compare_architectures

        engine = ExecutionEngine(workers=1)
        baseline = compare_architectures(
            bv_workload(16), head_sizes=(8,), qccd_trap_capacities=(5,),
            engine=engine,
        )
        stressed = compare_architectures(
            bv_workload(16), head_sizes=(8,), qccd_trap_capacities=(5,),
            scenario="crosstalk", engine=engine,
        )
        for name in baseline.architectures():
            assert (stressed.log10_success_rate(name)
                    <= baseline.log10_success_rate(name))

    def test_search_scenario_axis_spans_scenarios(self):
        space = _qft_space(knobs=[
            config_knob("max_swap_len", [7, 5]),
            scenario_knob(("baseline", "crosstalk")),
        ])
        result = run_search(space, GridStrategy(),
                            engine=ExecutionEngine(workers=1))
        by_label = {
            (p.assignments["max_swap_len"], p.assignments["scenario"]): p
            for p in result.points
        }
        assert by_label[("7", "crosstalk")].log10_success < \
            by_label[("7", "baseline")].log10_success


class TestStudy:
    def test_search_study_smoke(self):
        from repro.analysis.search_study import (
            report_from_results,
            search_study,
        )

        results = search_study("small", shots=64)
        assert set(results) == {"grid", "successive_halving"}
        assert results["successive_halving"].num_jobs < \
            results["grid"].num_jobs
        report = report_from_results(results)
        assert "Pareto table" in report
        assert "Figure S2" in report

    def test_write_search_json(self, tmp_path):
        from repro.analysis.search_study import (
            search_study,
            write_search_json,
        )

        results = search_study("small", shots=0)
        path = tmp_path / "search.json"
        write_search_json(path, results, "small")
        payload = json.loads(path.read_text())
        assert payload["scale"] == "small"
        grid = search_result_from_json(payload["strategies"]["grid"])
        assert grid.points == results["grid"].points
        assert grid.engine_stats is not None
