"""Tests for the CI benchmark-regression gate (benchmarks/check_regression.py)."""

import importlib.util
import json
import os

import pytest

_GATE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks", "check_regression.py",
)


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("check_regression",
                                                  _GATE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _medians(scale_tracked: float = 1.0, scale_all: float = 1.0,
             ) -> dict[str, float]:
    """A synthetic run with one benchmark per tracked hot path plus
    untracked ballast for the machine-speed normaliser."""
    tracked = {
        "benchmarks/bench_table3_compilation.py::test_tape_scheduling_time[QFT-0]": 0.006,
        "benchmarks/bench_engine.py::test_sweep_cache_hit_rate[QFT]": 0.0008,
        "benchmarks/bench_stochastic.py::test_serial_shots_per_second": 0.5,
        "benchmarks/bench_stochastic.py::test_batched_statevector_patterns": 0.04,
        "benchmarks/bench_scenarios.py::test_correlated_sampling_shots_per_second": 9.0,
        "benchmarks/bench_lint.py::test_lint_whole_repo": 0.55,
        "benchmarks/bench_lint.py::test_lint_whole_repo_graph": 1.3,
        "benchmarks/bench_obs.py::test_untraced_engine_batch": 0.02,
        "benchmarks/bench_obs.py::test_traced_engine_batch": 0.022,
        "benchmarks/bench_obs.py::test_monitored_engine_batch": 0.023,
        "benchmarks/bench_obs.py::test_profiled_engine_batch": 0.024,
    }
    untracked = {f"benchmarks/bench_other.py::test_{i}": 0.01 * (i + 1)
                 for i in range(8)}
    out = {name: value * scale_tracked * scale_all
           for name, value in tracked.items()}
    out.update({name: value * scale_all for name, value in untracked.items()})
    return out


class TestCheck:
    def test_identical_run_passes(self, gate):
        ok, lines = gate.check(_medians(), _medians())
        assert ok, "\n".join(lines)

    def test_injected_2x_slowdown_fails(self, gate):
        current = _medians()
        current["benchmarks/bench_stochastic.py::test_serial_shots_per_second"] *= 2.0
        ok, lines = gate.check(current, _medians())
        assert not ok
        assert any("REGRESSION" in line for line in lines)

    def test_small_jitter_passes(self, gate):
        ok, lines = gate.check(_medians(scale_tracked=1.15), _medians())
        assert ok, "\n".join(lines)

    def test_uniformly_slow_machine_passes_normalised(self, gate):
        # everything 2x slower = a slower runner, not a regression
        ok, lines = gate.check(_medians(scale_all=2.0), _medians())
        assert ok, "\n".join(lines)

    def test_uniformly_slow_machine_fails_raw(self, gate):
        ok, _ = gate.check(_medians(scale_all=2.0), _medians(),
                           normalize=False)
        assert not ok

    def test_missing_tracked_benchmark_fails(self, gate):
        current = _medians()
        del current["benchmarks/bench_engine.py::test_sweep_cache_hit_rate[QFT]"]
        ok, lines = gate.check(current, _medians())
        assert not ok
        assert any("MISSING" in line for line in lines)

    def test_disjoint_runs_fail(self, gate):
        ok, _ = gate.check({"benchmarks/bench_new.py::test_x": 1.0},
                           _medians())
        assert not ok


class TestCli:
    def _bench_json(self, path, medians):
        payload = {
            "benchmarks": [
                {"fullname": name, "stats": {"median": value}}
                for name, value in medians.items()
            ]
        }
        path.write_text(json.dumps(payload))

    def test_update_then_gate_round_trip(self, gate, tmp_path):
        bench = tmp_path / "bench.json"
        baseline = tmp_path / "baseline.json"
        self._bench_json(bench, _medians())
        assert gate.main([str(bench), "--baseline", str(baseline),
                          "--update-baseline"]) == 0
        assert gate.main([str(bench), "--baseline", str(baseline)]) == 0
        # the recorded threshold is live config, not a dead field
        assert gate.baseline_threshold(str(baseline)) == gate.DEFAULT_THRESHOLD

        slow = tmp_path / "slow.json"
        medians = _medians()
        medians["benchmarks/bench_stochastic.py::test_serial_shots_per_second"] *= 2.0
        self._bench_json(slow, medians)
        assert gate.main([str(slow), "--baseline", str(baseline)]) == 1

    def test_append_history_records_gate_run(self, gate, tmp_path):
        """--append-history lands one compacted bench.gate record with
        the normalised tracked ratios and the verdict."""
        from repro.obs.history import load_ledger

        bench = tmp_path / "bench.json"
        baseline = tmp_path / "baseline.json"
        ledger = tmp_path / "history.jsonl"
        self._bench_json(bench, _medians())
        assert gate.main([str(bench), "--baseline", str(baseline),
                          "--update-baseline"]) == 0
        assert gate.main([str(bench), "--baseline", str(baseline),
                          "--append-history", str(ledger)]) == 0

        slow = tmp_path / "slow.json"
        medians = _medians()
        medians["benchmarks/bench_stochastic.py::test_serial_shots_per_second"] *= 2.0
        self._bench_json(slow, medians)
        assert gate.main([str(slow), "--baseline", str(baseline),
                          "--append-history", str(ledger)]) == 1

        records = load_ledger(ledger)
        assert [r["kind"] for r in records] == ["bench.gate", "bench.gate"]
        passed, failed = records
        assert passed["extra"]["ok"] == 1
        assert passed["metrics"]["normalised.obs_overhead"] == pytest.approx(1.0)
        assert failed["extra"]["ok"] == 0
        assert failed["metrics"]["normalised.stochastic_shots"] > 1.5
        # the per-writer segments were compacted into the single
        # artifact file CI archives
        assert not list(tmp_path.glob("history.jsonl.*.seg"))

    def test_committed_baseline_tracks_every_hot_path(self, gate):
        """The real baseline.json must cover all tracked groups, so the
        gate in CI can never silently gate on nothing."""
        baseline = gate.load_baseline(gate.DEFAULT_BASELINE)
        groups = {gate.tracked_group(name) for name in baseline}
        assert groups >= {g for g, _ in gate.TRACKED_PATTERNS}
