"""Tests for tape-movement scheduling (Algorithm 2) and ExecutableProgram."""

import pytest

from repro.arch.tilt import TiltDevice
from repro.circuits.circuit import Circuit
from repro.compiler.decompose import decompose_to_native
from repro.compiler.executable import ExecutableProgram, TapeSegment
from repro.compiler.schedule import SchedulerConfig, TapeScheduler, schedule_tape_moves
from repro.compiler.swap_linq import LinqSwapInserter
from repro.exceptions import SchedulingError
from repro.workloads.qft import qft_workload


def routed_qft(device: TiltDevice, width: int) -> Circuit:
    native = decompose_to_native(qft_workload(width))
    return LinqSwapInserter(device).route(native).circuit


class TestScheduler:
    def test_every_gate_scheduled_once(self, tilt16):
        circuit = routed_qft(tilt16, 16)
        program = schedule_tape_moves(circuit, tilt16)
        scheduled = [i for segment in program.segments for i in segment.gate_indices]
        assert sorted(scheduled) == list(range(len(circuit)))

    def test_gates_fit_their_windows(self, tilt16):
        circuit = routed_qft(tilt16, 16)
        program = schedule_tape_moves(circuit, tilt16)
        program.validate()  # would raise on any window violation

    def test_single_window_circuit_needs_no_moves(self, tilt16):
        circuit = Circuit(16)
        for q in range(7):
            circuit.cx(q, q + 1)
        program = schedule_tape_moves(circuit, tilt16)
        assert program.num_moves == 0
        assert len(program.segments) == 1

    def test_full_coverage_needs_at_least_width_ratio_moves(self, tilt16):
        circuit = Circuit(16)
        for q in range(16):
            circuit.rz(0.1, q)
        program = schedule_tape_moves(circuit, tilt16)
        assert program.num_moves >= 1  # 16 qubits / 8-wide head

    def test_unrouted_gate_rejected(self, tilt16):
        with pytest.raises(SchedulingError):
            schedule_tape_moves(Circuit(16).cx(0, 15), tilt16)

    def test_full_width_barrier_rejected(self, tilt16):
        circuit = Circuit(16).barrier()
        with pytest.raises(SchedulingError):
            schedule_tape_moves(circuit, tilt16)

    def test_initial_position_respected(self, tilt16):
        circuit = Circuit(16).rz(0.3, 0)
        config = SchedulerConfig(initial_position=8)
        program = TapeScheduler(tilt16, config).schedule(circuit)
        # One move is needed because qubit 0 is not under a head at position 8.
        assert program.segments[0].position == 0
        assert program.num_moves == 0  # the first alignment is free

    def test_invalid_initial_position(self, tilt16):
        with pytest.raises(SchedulingError):
            TapeScheduler(tilt16, SchedulerConfig(initial_position=99))

    def test_near_move_tie_break_reduces_travel(self, tilt16):
        circuit = routed_qft(tilt16, 16)
        near = TapeScheduler(
            tilt16, SchedulerConfig(prefer_near_moves=True)
        ).schedule(circuit)
        far = TapeScheduler(
            tilt16, SchedulerConfig(prefer_near_moves=False)
        ).schedule(circuit)
        assert near.move_distance_ions <= far.move_distance_ions

    def test_dependencies_respected_in_execution_order(self, tilt16):
        circuit = routed_qft(tilt16, 16)
        program = schedule_tape_moves(circuit, tilt16)
        seen: set[int] = set()
        last_on_qubit: dict[int, int] = {}
        for segment in program.segments:
            for index in segment.gate_indices:
                gate = circuit[index]
                for qubit in gate.qubits:
                    previous = last_on_qubit.get(qubit)
                    assert previous is None or previous < index
                    last_on_qubit[qubit] = index
                seen.add(index)
        assert len(seen) == len(circuit)


class TestExecutableProgram:
    def _program(self, tilt8) -> ExecutableProgram:
        circuit = Circuit(8).cx(0, 1).cx(6, 7)
        return ExecutableProgram(
            circuit,
            tilt8,
            [TapeSegment(0, (0,)), TapeSegment(4, (1,))],
        )

    def test_metrics(self, tilt8):
        program = self._program(tilt8)
        assert program.num_moves == 1
        assert program.move_distance_ions == 4
        assert program.move_distance_um == pytest.approx(20.0)
        assert program.num_scheduled_gates == 2
        assert program.positions() == [0, 4]

    def test_gates_with_move_counts(self, tilt8):
        program = self._program(tilt8)
        moves = [m for _, m in program.gates_with_move_counts()]
        assert moves == [0, 1]

    def test_validate_accepts_good_program(self, tilt8):
        self._program(tilt8).validate()

    def test_validate_rejects_out_of_window_gate(self, tilt8):
        circuit = Circuit(8).cx(6, 7)
        program = ExecutableProgram(circuit, tilt8, [TapeSegment(0, (0,))])
        with pytest.raises(SchedulingError):
            program.validate()

    def test_validate_rejects_missing_gate(self, tilt8):
        circuit = Circuit(8).cx(0, 1).cx(1, 2)
        program = ExecutableProgram(circuit, tilt8, [TapeSegment(0, (0,))])
        with pytest.raises(SchedulingError):
            program.validate()

    def test_validate_rejects_dependency_violation(self, tilt8):
        circuit = Circuit(8).rz(0.1, 0).rx(0.2, 0)
        program = ExecutableProgram(
            circuit, tilt8, [TapeSegment(0, (1, 0))]
        )
        with pytest.raises(SchedulingError):
            program.validate()

    def test_summary_mentions_moves(self, tilt8):
        assert "1 moves" in self._program(tilt8).summary()
