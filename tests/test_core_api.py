"""Tests for the top-level LinQ facade, comparisons and sweeps."""

import pytest

from repro.arch.tilt import TiltDevice
from repro.compiler.pipeline import CompilerConfig
from repro.core.comparison import compare_architectures, tilt_vs_qccd_ratios
from repro.core.linq import LinQ
from repro.core.sweep import (
    alpha_sweep,
    find_best_max_swap_len,
    lookahead_sweep,
    mapper_sweep,
    max_swap_len_sweep,
)
from repro.noise.parameters import NoiseParameters
from repro.workloads.bv import bv_workload
from repro.workloads.qaoa import qaoa_workload
from repro.workloads.qft import qft_workload


class TestLinQFacade:
    def test_run_report(self, tilt16):
        report = LinQ(tilt16).run(bv_workload(16))
        assert 0.0 < report.success_rate <= 1.0
        assert report.num_moves == report.compile_result.stats.num_moves
        assert report.num_swaps == report.compile_result.stats.num_swaps
        assert report.execution_time_s > 0
        assert "success rate" in report.summary()

    def test_compile_then_simulate(self, tilt16):
        toolflow = LinQ(tilt16)
        compiled = toolflow.compile(qaoa_workload(16, rounds=1))
        result = toolflow.simulate(compiled)
        assert result.circuit_name == compiled.source_circuit.name

    def test_with_config_returns_new_toolflow(self, tilt16):
        toolflow = LinQ(tilt16)
        tweaked = toolflow.with_config(router="baseline")
        assert tweaked.config.router == "baseline"
        assert toolflow.config.router == "linq"
        assert tweaked.noise == toolflow.noise

    def test_exposes_config_and_noise(self, tilt16, noise):
        toolflow = LinQ(tilt16, CompilerConfig(alpha=0.5), noise)
        assert toolflow.config.alpha == 0.5
        assert toolflow.noise == noise


class TestComparison:
    def test_all_architectures_present(self):
        comparison = compare_architectures(
            qaoa_workload(16, rounds=2), head_sizes=(4, 8),
            qccd_trap_capacities=(5,),
        )
        assert set(comparison.architectures()) == {
            "TILT head 4", "TILT head 8", "Ideal TI", "QCCD",
        }
        assert "workload" in comparison.summary()

    def test_ratio_and_headline(self):
        comparisons = [
            compare_architectures(qaoa_workload(16, rounds=2),
                                  head_sizes=(4,), qccd_trap_capacities=(5,)),
            compare_architectures(bv_workload(16),
                                  head_sizes=(4,), qccd_trap_capacities=(5,)),
        ]
        ratios = tilt_vs_qccd_ratios(comparisons)
        assert "max" in ratios and "geometric_mean" in ratios
        assert ratios["max"] >= ratios["geometric_mean"]

    def test_best_qccd_capacity_is_selected(self):
        single = compare_architectures(
            qft_workload(16), head_sizes=(8,), qccd_trap_capacities=(5,),
        )
        multi = compare_architectures(
            qft_workload(16), head_sizes=(8,), qccd_trap_capacities=(5, 9, 15),
        )
        assert (multi.results["QCCD"].log10_success_rate
                >= single.results["QCCD"].log10_success_rate)

    def test_narrow_workload_falls_back_to_single_trap(self):
        comparison = compare_architectures(
            bv_workload(8), head_sizes=(4,), qccd_trap_capacities=(16,),
        )
        assert comparison.results["QCCD"].num_moves == 0


class TestSweeps:
    def test_max_swap_len_sweep_points(self, tilt16):
        points = max_swap_len_sweep(
            bv_workload(16), tilt16, [7, 5, 3],
            base_config=CompilerConfig(mapper="trivial"),
        )
        assert [p.value for p in points] == [7, 5, 3]
        for point in points:
            assert point.num_swaps >= 0
            assert 0.0 <= point.success_rate <= 1.0

    def test_default_length_range(self, tilt16):
        points = max_swap_len_sweep(bv_workload(16), tilt16)
        assert points[0].value == tilt16.max_gate_span
        assert points[-1].value == tilt16.head_size // 2

    def test_find_best_max_swap_len(self, tilt16):
        best = find_best_max_swap_len(qft_workload(16), tilt16, [7, 6, 5])
        assert best.value in (7, 6, 5)

    def test_alpha_and_lookahead_sweeps(self, tilt16):
        assert len(alpha_sweep(bv_workload(16), tilt16, [0.5, 0.9])) == 2
        assert len(lookahead_sweep(bv_workload(16), tilt16, [1, 10])) == 2

    def test_mapper_sweep_keys(self, tilt16):
        results = mapper_sweep(bv_workload(16), tilt16)
        assert set(results) == {"trivial", "spectral", "greedy"}

    def test_sweep_uses_noise_params(self, tilt16):
        noisy = max_swap_len_sweep(
            bv_workload(16), tilt16, [7],
            noise_params=NoiseParameters(residual_gate_error=1e-2),
        )[0]
        clean = max_swap_len_sweep(
            bv_workload(16), tilt16, [7],
            noise_params=NoiseParameters.noiseless(),
        )[0]
        assert clean.success_rate > noisy.success_rate
