"""Tests for the device specifications (TILT, Ideal TI, QCCD)."""

import pytest

from repro.arch.device import DEFAULT_ION_SPACING_UM
from repro.arch.ideal import IdealTrappedIonDevice
from repro.arch.qccd import QccdDevice, qccd_like_paper
from repro.arch.tilt import TiltDevice, tilt_16, tilt_32
from repro.exceptions import DeviceError


class TestTiltDevice:
    def test_paper_presets(self):
        assert tilt_16().head_size == 16
        assert tilt_32().head_size == 32
        assert tilt_16().num_qubits == 64

    def test_geometry(self, tilt16):
        assert tilt16.max_gate_span == 7
        assert tilt16.num_head_positions == 9
        assert list(tilt16.head_positions()) == list(range(9))

    def test_window(self, tilt16):
        assert list(tilt16.window(0)) == list(range(8))
        assert list(tilt16.window(8)) == list(range(8, 16))
        with pytest.raises(DeviceError):
            tilt16.window(9)

    def test_is_executable(self, tilt16):
        assert tilt16.is_executable(0, 7)
        assert not tilt16.is_executable(0, 8)
        with pytest.raises(DeviceError):
            tilt16.is_executable(0, 99)

    def test_gate_in_window(self, tilt16):
        assert tilt16.gate_in_window((2, 5), 0)
        assert not tilt16.gate_in_window((2, 10), 2)

    def test_positions_covering(self, tilt16):
        # Qubits 3 and 6 fit in windows starting at 0, 1, 2, 3.
        assert list(tilt16.positions_covering((3, 6))) == [0, 1, 2, 3]
        # Maximum-span gates have exactly one valid position.
        assert list(tilt16.positions_covering((8, 15))) == [8]
        # Unreachable gates have none.
        assert list(tilt16.positions_covering((0, 8))) == []

    def test_positions_covering_empty_tuple_is_every_position(self, tilt16):
        # regression: a global barrier constrains no ions, so instead of
        # crashing in min()/max() the full head-position range comes back
        covered = tilt16.positions_covering(())
        assert covered == tilt16.head_positions()
        assert len(covered) == tilt16.num_head_positions

    def test_move_distance(self, tilt16):
        assert tilt16.move_distance_um(0, 4) == 4 * DEFAULT_ION_SPACING_UM

    def test_describe(self, tilt16):
        assert "16-ion tape" in tilt16.describe()

    def test_validation(self):
        with pytest.raises(DeviceError):
            TiltDevice(num_qubits=8, head_size=1)
        with pytest.raises(DeviceError):
            TiltDevice(num_qubits=8, head_size=9)
        with pytest.raises(DeviceError):
            TiltDevice(num_qubits=0, head_size=4)
        with pytest.raises(DeviceError):
            TiltDevice(num_qubits=8, head_size=4, ion_spacing_um=-1)


class TestIdealDevice:
    def test_full_connectivity(self, ideal16):
        assert ideal16.is_executable(0, 15)
        assert not ideal16.is_executable(3, 3)

    def test_describe(self, ideal16):
        assert "fully connected" in ideal16.describe()


class TestQccdDevice:
    def test_derived_trap_count_leaves_slack(self):
        device = QccdDevice(num_qubits=64, trap_capacity=17)
        assert device.num_traps == 4
        layout = device.initial_layout()
        assert sum(len(chain) for chain in layout) == 64
        assert all(len(chain) <= device.trap_capacity for chain in layout)

    def test_initial_trap_of_is_contiguous(self, qccd16):
        traps = [qccd16.initial_trap_of(q) for q in range(16)]
        assert traps == sorted(traps)

    def test_trap_distance(self, qccd16):
        assert qccd16.trap_distance(0, 3) == 3
        with pytest.raises(DeviceError):
            qccd16.trap_distance(0, 99)

    def test_is_executable_within_initial_trap(self, qccd16):
        assert qccd16.is_executable(0, 1)
        assert not qccd16.is_executable(0, 15)

    def test_explicit_trap_count_validation(self):
        with pytest.raises(DeviceError):
            QccdDevice(num_qubits=64, trap_capacity=10, num_traps=2)
        with pytest.raises(DeviceError):
            QccdDevice(num_qubits=8, trap_capacity=1)

    def test_paper_preset(self):
        device = qccd_like_paper()
        assert device.num_qubits == 64
        assert "QCCD" in device.describe()
