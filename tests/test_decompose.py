"""Tests for native-gate decomposition."""

import math

import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.gate import NATIVE_GATE_NAMES, Gate
from repro.circuits.random import random_circuit
from repro.circuits.unitary import allclose_up_to_global_phase, circuit_unitary
from repro.compiler.decompose import (
    decompose_to_cx,
    decompose_to_native,
    merge_adjacent_rotations,
)


def assert_equivalent(original: Circuit, rewritten: Circuit) -> None:
    assert allclose_up_to_global_phase(
        circuit_unitary(original), circuit_unitary(rewritten)
    ), f"decomposition of {original.name} is not equivalent"


class TestToCx:
    @pytest.mark.parametrize("name,width,params", [
        ("cz", 2, ()),
        ("swap", 2, ()),
        ("cp", 2, (0.7,)),
        ("rzz", 2, (1.1,)),
        ("rxx", 2, (0.4,)),
        ("xx", 2, (0.3,)),
        ("ccx", 3, ()),
    ])
    def test_each_multiqubit_gate(self, name, width, params):
        circuit = Circuit(width)
        circuit.append(Gate(name, tuple(range(width)), params))
        rewritten = decompose_to_cx(circuit)
        assert all(g.name == "cx" or g.num_qubits == 1 for g in rewritten)
        assert_equivalent(circuit, rewritten)

    def test_keep_xx_flag(self):
        circuit = Circuit(2).xx(0.4, 0, 1)
        assert decompose_to_cx(circuit, keep_xx=True).count_ops() == {"xx": 1}

    def test_measure_and_barrier_pass_through(self):
        circuit = Circuit(2).barrier().measure(0)
        rewritten = decompose_to_cx(circuit)
        assert [g.name for g in rewritten] == ["barrier", "measure"]

    def test_random_circuits_equivalent(self):
        for seed in range(4):
            circuit = random_circuit(4, 20, seed=seed)
            assert_equivalent(circuit, decompose_to_cx(circuit))


class TestToNative:
    def test_only_native_names_remain(self):
        circuit = random_circuit(4, 30, seed=3)
        native = decompose_to_native(circuit)
        assert {g.name for g in native} <= NATIVE_GATE_NAMES

    def test_cnot_construction_matches_paper_structure(self):
        native = decompose_to_native(Circuit(2).cx(0, 1))
        names = [g.name for g in native]
        assert names == ["ry", "xx", "rx", "rx", "ry"]
        assert native[1].params[0] == pytest.approx(math.pi / 4)

    @pytest.mark.parametrize("builder", [
        lambda c: c.h(0),
        lambda c: c.x(0),
        lambda c: c.y(0),
        lambda c: c.z(0),
        lambda c: c.s(0),
        lambda c: c.sdg(0),
        lambda c: c.t(0),
        lambda c: c.tdg(0),
        lambda c: c.sx(0),
        lambda c: c.p(0.3, 0),
        lambda c: c.u3(0.3, 0.4, 0.5, 0),
        lambda c: c.cx(0, 1),
        lambda c: c.cz(0, 1),
        lambda c: c.swap(0, 1),
        lambda c: c.cp(0.9, 0, 1),
        lambda c: c.ccx(0, 1, 2),
    ])
    def test_each_gate_equivalent(self, builder):
        circuit = Circuit(3)
        builder(circuit)
        assert_equivalent(circuit, decompose_to_native(circuit))

    def test_random_circuits_equivalent(self):
        for seed in range(4):
            circuit = random_circuit(4, 25, seed=10 + seed)
            assert_equivalent(circuit, decompose_to_native(circuit))

    def test_identity_gates_dropped(self):
        native = decompose_to_native(Circuit(1).id(0))
        assert len(native) == 0


class TestRotationMerging:
    def test_adjacent_same_axis_rotations_fuse(self):
        circuit = Circuit(1).rz(0.2, 0).rz(0.3, 0)
        merged = merge_adjacent_rotations(circuit)
        assert len(merged) == 1
        assert merged[0].params[0] == pytest.approx(0.5)

    def test_full_turn_is_dropped(self):
        circuit = Circuit(1).rz(math.pi, 0).rz(math.pi, 0)
        assert len(merge_adjacent_rotations(circuit)) == 0

    def test_different_axes_not_fused(self):
        circuit = Circuit(1).rz(0.2, 0).rx(0.3, 0)
        assert len(merge_adjacent_rotations(circuit)) == 2

    def test_intervening_two_qubit_gate_blocks_fusion(self):
        circuit = Circuit(2).rz(0.2, 0).xx(0.1, 0, 1).rz(0.3, 0)
        merged = merge_adjacent_rotations(circuit)
        assert sum(1 for g in merged if g.name == "rz") == 2

    def test_equivalence_on_random_native_circuits(self):
        from repro.circuits.random import random_native_circuit

        for seed in range(3):
            circuit = random_native_circuit(3, 30, seed=seed)
            assert_equivalent(circuit, merge_adjacent_rotations(circuit))

    def test_merging_after_decomposition_reduces_size(self):
        circuit = Circuit(2)
        for _ in range(4):
            circuit.cx(0, 1)
        native = decompose_to_native(circuit)
        merged = merge_adjacent_rotations(native)
        assert len(merged) < len(native)
        assert_equivalent(native, merged)
