"""Tests for the QAOA MaxCut workload."""

import pytest

from repro.exceptions import CircuitError
from repro.sim.statevector import StatevectorSimulator
from repro.workloads.qaoa import (
    line_graph_edges,
    qaoa_maxcut,
    qaoa_workload,
    random_regular_edges,
    ring_graph_edges,
)


class TestGraphs:
    def test_line_graph(self):
        assert line_graph_edges(4) == [(0, 1), (1, 2), (2, 3)]

    def test_ring_graph(self):
        edges = ring_graph_edges(4)
        assert (0, 3) in edges and len(edges) == 4

    def test_random_regular_degree_bound(self):
        edges = random_regular_edges(12, degree=3, seed=3)
        degree = [0] * 12
        for a, b in edges:
            degree[a] += 1
            degree[b] += 1
        assert max(degree) <= 3

    def test_random_regular_deterministic(self):
        assert random_regular_edges(10, seed=5) == random_regular_edges(10, seed=5)


class TestStructure:
    def test_gate_counts_per_round(self):
        circuit = qaoa_maxcut(8, rounds=3)
        ops = circuit.count_ops()
        assert ops["rzz"] == 3 * 7
        assert ops["rx"] == 3 * 8
        assert ops["h"] == 8

    def test_table2_count(self):
        from repro.compiler.decompose import decompose_to_cx

        assert decompose_to_cx(qaoa_workload(64)).num_two_qubit_gates() == 1260

    def test_nearest_neighbour_spans(self):
        circuit = qaoa_workload(16, rounds=2)
        assert max(g.span for g in circuit if g.is_two_qubit) == 1

    def test_custom_edges_and_angles(self):
        circuit = qaoa_maxcut(4, rounds=2, edges=[(0, 3)],
                              gammas=[0.1, 0.2], betas=[0.3, 0.4])
        rzz = [g for g in circuit if g.name == "rzz"]
        assert len(rzz) == 2
        assert rzz[0].params[0] == pytest.approx(-0.2)

    def test_measure_flag(self):
        assert qaoa_maxcut(3, 1, measure=True).count_ops()["measure"] == 3

    def test_invalid_arguments(self):
        with pytest.raises(CircuitError):
            qaoa_maxcut(1, 1)
        with pytest.raises(CircuitError):
            qaoa_maxcut(4, 0)
        with pytest.raises(CircuitError):
            qaoa_maxcut(4, 1, edges=[(0, 9)])
        with pytest.raises(CircuitError):
            qaoa_maxcut(4, 2, gammas=[0.1], betas=[0.1, 0.2])


class TestSemantics:
    def test_some_angle_biases_toward_cut_states(self):
        # On a 2-vertex graph the optimal cut separates the two vertices; for
        # well chosen angles one QAOA round must beat the uniform baseline
        # probability of 0.5 for |01> + |10>.
        simulator = StatevectorSimulator()
        best = 0.0
        for step in range(1, 8):
            gamma = 0.1 * step
            for beta_step in range(1, 8):
                beta = 0.1 * beta_step
                circuit = qaoa_maxcut(2, rounds=1, gammas=[gamma], betas=[beta])
                probabilities = simulator.probabilities(circuit)
                best = max(best, float(probabilities[1] + probabilities[2]))
        assert best > 0.8

    def test_angles_change_the_output_distribution(self):
        simulator = StatevectorSimulator()
        a = simulator.probabilities(qaoa_maxcut(3, 1, gammas=[0.2], betas=[0.3]))
        b = simulator.probabilities(qaoa_maxcut(3, 1, gammas=[0.9], betas=[0.3]))
        assert abs(a - b).max() > 1e-3
