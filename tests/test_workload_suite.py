"""Tests for the Table II benchmark suite registry."""

import pytest

from repro.exceptions import ReproError
from repro.workloads.suite import (
    benchmark,
    build_workload,
    routing_suite,
    standard_suite,
    suite_qubits,
    table2_rows,
)


class TestRegistry:
    def test_six_benchmarks(self):
        names = [spec.name for spec in standard_suite()]
        assert names == ["ADDER", "BV", "QAOA", "RCS", "QFT", "SQRT"]

    def test_lookup_case_insensitive(self):
        assert benchmark("qft").name == "QFT"

    def test_unknown_benchmark(self):
        with pytest.raises(ReproError):
            benchmark("shor")

    def test_routing_suite_is_the_long_distance_subset(self):
        assert [spec.name for spec in routing_suite()] == ["BV", "QFT", "SQRT"]

    def test_paper_widths(self):
        widths = {spec.name: spec.paper_qubits for spec in standard_suite()}
        assert widths == {"ADDER": 64, "BV": 64, "QAOA": 64, "RCS": 64,
                          "QFT": 64, "SQRT": 78}

    def test_suite_qubits_scales(self):
        assert suite_qubits("QFT", "paper") == 64
        assert suite_qubits("QFT", "small") == 16
        with pytest.raises(ReproError):
            suite_qubits("QFT", "huge")


class TestBuilding:
    def test_build_small_scale(self):
        circuit = build_workload("BV", "small")
        assert circuit.num_qubits == 16
        assert circuit.name == "bv"

    def test_build_default_is_paper_size(self):
        assert benchmark("ADDER").build().num_qubits == 64

    def test_two_qubit_gate_count_helper(self):
        assert benchmark("QFT").two_qubit_gate_count(8) == 8 * 7

    def test_table2_rows_small(self):
        rows = table2_rows("small")
        assert len(rows) == 6
        for row in rows:
            assert row["two_qubit_gates"] > 0
            assert row["qubits"] <= 20

    def test_table2_rows_paper_match_reported_counts(self):
        rows = {row["application"]: row for row in table2_rows("paper")}
        # Exact matches where the construction is unambiguous.
        assert rows["QFT"]["two_qubit_gates"] == 4032
        assert rows["RCS"]["two_qubit_gates"] == 560
        assert rows["QAOA"]["two_qubit_gates"] == 1260
        # Within 15% for the benchmarks whose source is not public gate-level.
        for name in ("ADDER", "BV", "SQRT"):
            measured = rows[name]["two_qubit_gates"]
            reported = rows[name]["paper_two_qubit_gates"]
            assert abs(measured - reported) / reported < 0.15
