"""Tests for the stochastic (shot-based Monte-Carlo) noise subsystem."""

import dataclasses

import pytest

from repro.analysis.convergence import convergence_study, sampled_figure8
from repro.arch.ideal import IdealTrappedIonDevice
from repro.arch.qccd import QccdDevice
from repro.arch.tilt import TiltDevice
from repro.circuits.circuit import Circuit
from repro.compiler.pipeline import CompilerConfig, LinQCompiler
from repro.compiler.qccd_compiler import QccdCompiler
from repro.exceptions import ReproError, SimulationError
from repro.exec import (
    ExecutionEngine,
    JobSpec,
    run_sampled_job,
    shard_sampling_spec,
    spec_key,
)
from repro.exec.engine import reset_default_engine
from repro.noise.channels import (
    PAULI_LABELS_2Q,
    ErrorSite,
    error_site_for_gate,
    pauli_gates,
)
from repro.noise.parameters import NoiseParameters
from repro.sim.ideal_sim import IdealSimulator
from repro.sim.qccd_sim import QccdSimulator
from repro.sim.stochastic import (
    ShotRecord,
    ShotResult,
    merge_shot_results,
    wilson_interval,
)
from repro.sim.tilt_sim import TiltSimulator
from repro.workloads.bv import bv_workload
from repro.workloads.qft import qft_workload


@pytest.fixture(autouse=True)
def _fresh_default_engine():
    reset_default_engine()
    yield
    reset_default_engine()


@pytest.fixture(scope="module")
def bv16_compiled():
    device = TiltDevice(num_qubits=16, head_size=8)
    compiled = LinQCompiler(
        device, CompilerConfig(mapper="trivial")
    ).compile(bv_workload(16))
    return device, compiled


@pytest.fixture(scope="module")
def qft16_compiled():
    device = TiltDevice(num_qubits=16, head_size=8)
    compiled = LinQCompiler(device, CompilerConfig()).compile(qft_workload(16))
    return device, compiled


# ----------------------------------------------------------------------
# Wilson interval
# ----------------------------------------------------------------------
class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(73, 100)
        assert low < 0.73 < high

    def test_bounds_stay_in_unit_interval(self):
        assert wilson_interval(0, 50)[0] == 0.0
        assert wilson_interval(50, 50)[1] == 1.0

    def test_zero_successes_interval_is_informative(self):
        low, high = wilson_interval(0, 10000)
        assert low == 0.0
        assert 0.0 < high < 1e-3  # ~3.8e-4: tiny rates stay inside

    def test_tightens_with_shots(self):
        narrow = wilson_interval(500, 1000)
        wide = wilson_interval(50, 100)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]

    def test_invalid_inputs(self):
        with pytest.raises(SimulationError):
            wilson_interval(1, 0)
        with pytest.raises(SimulationError):
            wilson_interval(5, 4)


# ----------------------------------------------------------------------
# Channel vocabulary
# ----------------------------------------------------------------------
class TestChannels:
    def test_barrier_and_perfect_gates_have_no_site(self):
        from repro.circuits.gate import Gate

        assert error_site_for_gate(0, Gate("barrier", (0, 1)), 0.5) is None
        assert error_site_for_gate(0, Gate("h", (0,)), 1.0) is None

    def test_kinds(self):
        from repro.circuits.gate import Gate

        assert error_site_for_gate(0, Gate("h", (0,)), 0.9).kind == "pauli1"
        assert error_site_for_gate(
            0, Gate("xx", (0, 1), (0.5,)), 0.9
        ).kind == "pauli2"
        assert error_site_for_gate(
            0, Gate("measure", (3,)), 0.9
        ).kind == "measure_flip"

    def test_two_qubit_labels_cover_15_paulis(self):
        assert len(PAULI_LABELS_2Q) == 15
        assert "II" not in PAULI_LABELS_2Q

    def test_pauli_gates_skip_identity_factors(self):
        site = ErrorSite(index=0, kind="pauli2", qubits=(4, 7),
                         probability=0.1)
        gates = pauli_gates(site, "IX")
        assert [(g.name, g.qubits) for g in gates] == [("x", (7,))]


# ----------------------------------------------------------------------
# ShotResult container
# ----------------------------------------------------------------------
def _shot_result(shots=4, successes=3, offset=0, **overrides):
    fields = dict(
        architecture="TILT head 8",
        circuit_name="bv",
        shots=shots,
        seed=1,
        shot_offset=offset,
        successes=successes,
        errors_per_shot=tuple(
            0 if index < successes else 1 for index in range(shots)
        ),
        records=(ShotRecord(shot=offset + shots - 1, errors=((0, "X"),)),),
        num_error_sites=5,
        expected_success_rate=0.75,
    )
    fields.update(overrides)
    return ShotResult(**fields)


class TestShotResult:
    def test_success_rate_and_interval(self):
        result = _shot_result(shots=100, successes=80)
        assert result.success_rate == 0.8
        low, high = result.confidence_interval
        assert low < 0.8 < high

    def test_validation(self):
        with pytest.raises(SimulationError):
            _shot_result(shots=0, successes=0)
        with pytest.raises(SimulationError):
            _shot_result(shots=4, successes=5)
        with pytest.raises(SimulationError):
            _shot_result(errors_per_shot=(0,))

    def test_to_simulation_result_carries_interval(self):
        simulation = _shot_result(shots=100, successes=80).to_simulation_result()
        assert simulation.success_rate == 0.8
        assert simulation.extras["sampled"] == 1.0
        assert simulation.extras["ci_low"] < 0.8 < simulation.extras["ci_high"]

    def test_merge_is_order_insensitive_and_contiguous(self):
        first = _shot_result(shots=4, successes=3, offset=0)
        second = _shot_result(shots=6, successes=5, offset=4)
        merged = merge_shot_results([second, first])
        assert merged.shots == 10
        assert merged.successes == 8
        assert merged.errors_per_shot == (
            first.errors_per_shot + second.errors_per_shot
        )
        assert len(merged.records) == 2

    def test_merge_rejects_gaps_and_mismatches(self):
        first = _shot_result(offset=0)
        with pytest.raises(SimulationError):
            merge_shot_results([first, _shot_result(offset=5)])
        with pytest.raises(SimulationError):
            merge_shot_results([first, _shot_result(offset=4, seed=2)])
        with pytest.raises(SimulationError):
            merge_shot_results([])


# ----------------------------------------------------------------------
# Sampler determinism and sharding
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_same_seed_is_bit_identical(self, bv16_compiled, noise):
        device, compiled = bv16_compiled
        simulator = TiltSimulator(device, noise)
        first = simulator.run_stochastic(compiled, shots=500, seed=9)
        second = simulator.run_stochastic(compiled, shots=500, seed=9)
        assert first == second

    def test_different_seeds_differ(self, qft16_compiled, noise):
        device, compiled = qft16_compiled
        simulator = TiltSimulator(device, noise)
        first = simulator.run_stochastic(compiled, shots=500, seed=9)
        second = simulator.run_stochastic(compiled, shots=500, seed=10)
        assert first.errors_per_shot != second.errors_per_shot

    def test_shards_merge_bit_identically(self, qft16_compiled, noise):
        device, compiled = qft16_compiled
        simulator = TiltSimulator(device, noise)
        serial = simulator.run_stochastic(compiled, shots=600, seed=4)
        shards = [
            simulator.run_stochastic(compiled, shots=width, seed=4,
                                     shot_offset=offset)
            for offset, width in ((0, 100), (100, 350), (450, 150))
        ]
        assert merge_shot_results(shards) == serial

    @pytest.mark.parametrize("scenario", ["baseline", "crosstalk",
                                          "leakage", "heating_burst",
                                          "worst_case"])
    def test_every_scenario_shards_bit_identically(self, scenario,
                                                   qft16_compiled, noise):
        # scenario determinism: for each registered scenario, a seeded
        # run is bit-identical no matter how the shots are sharded
        device, compiled = qft16_compiled
        simulator = TiltSimulator(device, noise)
        serial = simulator.run_stochastic(compiled, shots=400, seed=4,
                                          scenario=scenario)
        shards = [
            simulator.run_stochastic(compiled, shots=width, seed=4,
                                     shot_offset=offset, scenario=scenario)
            for offset, width in ((0, 150), (150, 150), (300, 100))
        ]
        assert merge_shot_results(shards) == serial

    @pytest.mark.parametrize("scenario", ["baseline", "worst_case"])
    def test_scenario_worker_count_invariance(self, scenario):
        spec = _sampled_spec(shots=400, scenario=scenario)
        serial = run_sampled_job(spec, shards=4,
                                 engine=ExecutionEngine(workers=1))
        pooled = run_sampled_job(spec, shards=4,
                                 engine=ExecutionEngine(workers=4))
        assert serial.shot == pooled.shot

    def test_shards_merge_identically_past_the_record_cap(
            self, qft16_compiled, noise):
        # QFT-16 has ~25% erroneous shots, so a cap of 8 saturates in
        # every shard; the merge must still equal one serial pass
        device, compiled = qft16_compiled
        simulator = TiltSimulator(device, noise)
        serial = simulator.run_stochastic(compiled, shots=400, seed=4,
                                          max_records=8)
        shards = [
            simulator.run_stochastic(compiled, shots=200, seed=4,
                                     shot_offset=offset, max_records=8)
            for offset in (0, 200)
        ]
        assert sum(len(shard.records) for shard in shards) > 8
        assert merge_shot_results(shards) == serial
        with pytest.raises(SimulationError):
            merge_shot_results([
                shards[0],
                dataclasses.replace(shards[1], max_records=9),
            ])


# ----------------------------------------------------------------------
# Convergence to the analytic model (the acceptance criterion)
# ----------------------------------------------------------------------
class TestConvergence:
    def test_bv16_tilt_agrees_within_ci_at_10k_shots(self, bv16_compiled,
                                                     noise):
        device, compiled = bv16_compiled
        simulator = TiltSimulator(device, noise)
        analytic = simulator.run(compiled)
        shot = simulator.run_stochastic(compiled, shots=10_000, seed=2021)
        assert shot.agrees_with_analytic(analytic.success_rate)
        # the two estimates are genuinely close, not just inside a wide CI
        assert abs(shot.success_rate - analytic.success_rate) < 0.01

    def test_qft16_tilt_agrees_within_ci_at_10k_shots(self, qft16_compiled,
                                                      noise):
        device, compiled = qft16_compiled
        simulator = TiltSimulator(device, noise)
        analytic = simulator.run(compiled)
        shot = simulator.run_stochastic(compiled, shots=10_000, seed=2021)
        assert shot.agrees_with_analytic(analytic.success_rate)
        assert shot.expected_success_rate == pytest.approx(
            analytic.success_rate, rel=1e-9
        )

    def test_qccd_sampled_agrees(self, noise):
        device = QccdDevice(num_qubits=16, trap_capacity=5)
        program = QccdCompiler(device).compile(bv_workload(16))
        simulator = QccdSimulator(device, noise)
        analytic = simulator.run(program, circuit_name="bv")
        shot = simulator.run_stochastic(program, shots=5000, seed=2021,
                                        circuit_name="bv")
        assert shot.architecture == "QCCD"
        assert shot.agrees_with_analytic(analytic.success_rate)

    def test_ideal_sampled_agrees(self, noise):
        device = IdealTrappedIonDevice(num_qubits=16)
        simulator = IdealSimulator(device, noise)
        circuit = bv_workload(16)
        analytic = simulator.run(circuit)
        shot = simulator.run_stochastic(circuit, shots=5000, seed=2021)
        assert shot.architecture == "Ideal TI"
        assert shot.agrees_with_analytic(analytic.success_rate)


# ----------------------------------------------------------------------
# Counts sampling
# ----------------------------------------------------------------------
class TestCounts:
    def test_noiseless_bell_counts(self, noiseless):
        device = IdealTrappedIonDevice(num_qubits=2)
        bell = Circuit(2, name="bell")
        bell.h(0)
        bell.cx(0, 1)
        result = IdealSimulator(device, noiseless).run_stochastic(
            bell, shots=400, seed=5, sample_counts=True
        )
        assert result.successes == 400
        assert set(result.counts) <= {"00", "11"}
        assert sum(result.counts.values()) == 400
        # an unbiased Bell pair: both outcomes show up
        assert len(result.counts) == 2

    def test_measurement_flips_move_counts(self, noiseless):
        params = noiseless.with_overrides(measurement_error=0.5)
        device = IdealTrappedIonDevice(num_qubits=2)
        circuit = Circuit(2, name="flips")
        circuit.measure_all()  # state stays |00>, readout is noisy
        result = IdealSimulator(device, params).run_stochastic(
            circuit, shots=600, seed=5, sample_counts=True
        )
        assert result.successes < 600
        assert any(outcome != "00" for outcome in result.counts)
        flipped = sum(count for outcome, count in result.counts.items()
                      if outcome != "00")
        assert flipped == 600 - result.successes

    def test_counts_need_the_gate_sequence(self):
        from repro.sim.stochastic import StochasticSampler

        sampler = StochasticSampler(architecture="x", circuit_name="y",
                                    sites=[])
        with pytest.raises(SimulationError):
            sampler.run(10, sample_counts=True)

    def test_tilt_counts_are_in_logical_qubit_order(self, noiseless,
                                                    bv16_compiled):
        from repro.sim.statevector import StatevectorSimulator

        device, compiled = bv16_compiled
        result = TiltSimulator(device, noiseless).run_stochastic(
            compiled, shots=50, seed=1, sample_counts=True
        )
        # noiseless sampling must land on outcomes the *logical* circuit
        # can produce (BV leaves its ancilla in superposition, so there
        # are two); the routed/physical bit order would have zero
        # probability here because routing SWAPs permute the wires
        probabilities = StatevectorSimulator().probabilities(bv_workload(16))
        assert sum(result.counts.values()) == 50
        for outcome in result.counts:
            assert probabilities[int(outcome, 2)] > 1e-9

    def test_bare_program_counts_stay_physical(self, noiseless,
                                               bv16_compiled):
        from repro.sim.statevector import StatevectorSimulator

        device, compiled = bv16_compiled
        result = TiltSimulator(device, noiseless).run_stochastic(
            compiled.program, shots=20, seed=1, sample_counts=True
        )
        probabilities = StatevectorSimulator().probabilities(
            compiled.routed_circuit
        )
        for outcome in result.counts:
            assert probabilities[int(outcome, 2)] > 1e-9

    def test_counts_reproducible_across_sharding(self, noise, bv16_compiled):
        device, compiled = bv16_compiled
        simulator = TiltSimulator(device, noise)
        serial = simulator.run_stochastic(compiled, shots=200, seed=6,
                                          sample_counts=True)
        shards = [
            simulator.run_stochastic(compiled, shots=100, seed=6,
                                     shot_offset=offset, sample_counts=True)
            for offset in (0, 100)
        ]
        assert merge_shot_results(shards).counts == serial.counts


# ----------------------------------------------------------------------
# Vectorized sampling vs the exhaustive per-shot reference
# ----------------------------------------------------------------------
class TestVectorizedReference:
    """The vectorized kernels are pinned bit-identical to
    ``exhaustive_shots=True`` — the same draw discipline executed with one
    real generator per shot — across backends, modes and shard splits."""

    def test_tilt_success_sampling_bit_identity(self, qft16_compiled, noise):
        device, compiled = qft16_compiled
        simulator = TiltSimulator(device, noise)
        vectorized = simulator.run_stochastic(compiled, shots=400, seed=7)
        reference = simulator.run_stochastic(compiled, shots=400, seed=7,
                                             exhaustive_shots=True)
        assert vectorized == reference

    def test_exhaustive_shards_merge_into_the_vectorized_serial_run(
            self, qft16_compiled, noise):
        # offsets must not shift either discipline's stream: reference
        # shards reassemble the vectorized whole bit for bit
        device, compiled = qft16_compiled
        simulator = TiltSimulator(device, noise)
        vectorized = simulator.run_stochastic(compiled, shots=300, seed=11)
        shards = [
            simulator.run_stochastic(compiled, shots=width, seed=11,
                                     shot_offset=offset,
                                     exhaustive_shots=True)
            for offset, width in ((0, 120), (120, 80), (200, 100))
        ]
        assert merge_shot_results(shards) == vectorized

    def test_tilt_counts_bit_identity(self, noise):
        device = TiltDevice(num_qubits=8, head_size=4)
        compiled = LinQCompiler(device, CompilerConfig()).compile(
            qft_workload(8)
        )
        simulator = TiltSimulator(device, noise)
        vectorized = simulator.run_stochastic(compiled, shots=150, seed=3,
                                              sample_counts=True)
        reference = simulator.run_stochastic(compiled, shots=150, seed=3,
                                             sample_counts=True,
                                             exhaustive_shots=True)
        assert vectorized == reference
        assert vectorized.counts is not None

    def test_scenario_counts_bit_identity(self, noise):
        # worst_case routes through the correlated column-wise kernels
        # (bursts, leakage suppression, crosstalk) and the leak coin flips
        device = TiltDevice(num_qubits=8, head_size=4)
        compiled = LinQCompiler(device, CompilerConfig()).compile(
            qft_workload(8)
        )
        simulator = TiltSimulator(device, noise)
        vectorized = simulator.run_stochastic(compiled, shots=100, seed=5,
                                              sample_counts=True,
                                              scenario="worst_case")
        reference = simulator.run_stochastic(compiled, shots=100, seed=5,
                                             sample_counts=True,
                                             scenario="worst_case",
                                             exhaustive_shots=True)
        assert vectorized == reference

    def test_ideal_backend_bit_identity(self, noise):
        device = IdealTrappedIonDevice(num_qubits=6)
        simulator = IdealSimulator(device, noise)
        circuit = bv_workload(6)
        vectorized = simulator.run_stochastic(circuit, shots=200, seed=9,
                                              sample_counts=True)
        reference = simulator.run_stochastic(circuit, shots=200, seed=9,
                                             sample_counts=True,
                                             exhaustive_shots=True)
        assert vectorized == reference

    def test_qccd_backend_bit_identity(self, noise):
        device = QccdDevice(num_qubits=8, trap_capacity=4)
        program = QccdCompiler(device).compile(qft_workload(8))
        simulator = QccdSimulator(device, noise)
        vectorized = simulator.run_stochastic(program, shots=150, seed=13,
                                              circuit_name="qft")
        reference = simulator.run_stochastic(program, shots=150, seed=13,
                                             circuit_name="qft",
                                             exhaustive_shots=True)
        assert vectorized == reference


# ----------------------------------------------------------------------
# Pattern grouping and the memoised ideal distribution
# ----------------------------------------------------------------------
class TestCountsResimulationEconomy:
    def test_resimulation_runs_once_per_distinct_pattern(self):
        from repro.circuits.gate import Gate
        from repro.sim.stochastic import StochasticSampler

        # one fallible Pauli site -> at most 3 distinct error patterns
        # (X, Y or Z after gate 0), however many shots trigger it
        gates = [Gate("h", (0,)), Gate("cx", (0, 1))]
        sampler = StochasticSampler(
            architecture="x", circuit_name="bell",
            sites=[ErrorSite(index=0, kind="pauli1", qubits=(0,),
                             probability=0.5)],
            gates=gates, num_qubits=2,
        )
        result = sampler.run(200, seed=3, sample_counts=True)
        stats = sampler.last_stats
        assert stats["mode"] == "vectorized"
        assert stats["resimulations"] == stats["distinct_patterns"]
        assert stats["distinct_patterns"] <= 3
        assert stats["replayed_shots"] > stats["distinct_patterns"]
        # the reference path re-simulates every erroneous shot anew and
        # still produces the identical result
        reference = sampler.run(200, seed=3, sample_counts=True,
                                exhaustive_shots=True)
        assert reference == result
        assert (sampler.last_stats["resimulations"]
                > stats["resimulations"])

    def test_ideal_distribution_computed_once_across_shards(
            self, monkeypatch, noiseless):
        from repro.sim.statevector import StatevectorSimulator
        from repro.sim.stochastic import _ideal_cumulative

        # regression: the ideal outcome distribution used to be
        # recomputed by every shard of a counts run; it is memoised on
        # the executed gate sequence now, so a 3-shard fan-out performs
        # exactly one statevector pass
        _ideal_cumulative.cache_clear()
        calls: list[str] = []
        original = StatevectorSimulator.probabilities

        def counting(self, circuit):
            calls.append(circuit.name or "")
            return original(self, circuit)

        monkeypatch.setattr(StatevectorSimulator, "probabilities", counting)
        device = IdealTrappedIonDevice(num_qubits=4)
        simulator = IdealSimulator(device, noiseless)
        circuit = qft_workload(4)
        shards = [
            simulator.run_stochastic(circuit, shots=50, seed=2,
                                     shot_offset=offset, sample_counts=True)
            for offset in (0, 50, 100)
        ]
        merged = merge_shot_results(shards)
        assert merged.shots == 150
        assert len(calls) == 1


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------
def _sampled_spec(shots=300, seed=3, **overrides):
    fields = dict(
        circuit=bv_workload(16),
        device=TiltDevice(num_qubits=16, head_size=8),
        config=CompilerConfig(mapper="trivial"),
        noise=NoiseParameters.paper_defaults(),
        shots=shots,
        seed=seed,
        label="bv-sampled",
    )
    fields.update(overrides)
    return JobSpec(**fields)


class TestEngineIntegration:
    def test_sampling_dimension_is_hashed(self):
        base = _sampled_spec()
        assert spec_key(base) == spec_key(_sampled_spec())
        assert spec_key(base) != spec_key(_sampled_spec(shots=301))
        assert spec_key(base) != spec_key(_sampled_spec(seed=4))
        assert spec_key(base) != spec_key(
            dataclasses.replace(base, shot_offset=10)
        )
        analytic = dataclasses.replace(base, shots=0, shot_offset=0, seed=0)
        assert spec_key(base) != spec_key(analytic)

    def test_spec_validation(self):
        with pytest.raises(ReproError):
            _sampled_spec(shots=-1)
        with pytest.raises(ReproError):
            _sampled_spec(seed=-1)
        with pytest.raises(ReproError):
            dataclasses.replace(_sampled_spec(), shots=0, shot_offset=5)
        with pytest.raises(ReproError):
            _sampled_spec(simulate=False)

    def test_execute_carries_shot_result(self):
        result = ExecutionEngine(workers=1).run_one(_sampled_spec())
        assert result.shot is not None
        assert result.shot.shots == 300
        assert result.simulation is not None
        assert result.shot.analytic == result.simulation

    def test_worker_count_invariance(self):
        spec = _sampled_spec(shots=600)
        serial = run_sampled_job(spec, shards=3,
                                 engine=ExecutionEngine(workers=1))
        pooled = run_sampled_job(spec, shards=3,
                                 engine=ExecutionEngine(workers=3))
        assert serial.shot == pooled.shot

    def test_sharding_invariance(self):
        spec = _sampled_spec(shots=500)
        one = run_sampled_job(spec, shards=1,
                              engine=ExecutionEngine(workers=1))
        many = run_sampled_job(spec, shards=4,
                               engine=ExecutionEngine(workers=1))
        assert one.shot == many.shot
        assert one.key == many.key == spec_key(spec)

    def test_shard_split_covers_all_shots(self):
        shards = shard_sampling_spec(_sampled_spec(shots=10), 3)
        assert [s.shots for s in shards] == [4, 3, 3]
        assert [s.shot_offset for s in shards] == [0, 4, 7]
        with pytest.raises(ReproError):
            shard_sampling_spec(_sampled_spec(shots=10), 0)
        with pytest.raises(ReproError):
            shard_sampling_spec(
                dataclasses.replace(_sampled_spec(), shots=0, seed=0), 2
            )

    def test_more_shards_than_shots_is_harmless(self):
        shards = shard_sampling_spec(_sampled_spec(shots=2), 5)
        assert [s.shots for s in shards] == [1, 1]

    def test_disk_cache_round_trips_shot_results(self, tmp_path):
        path = tmp_path / "cache.json"
        spec = _sampled_spec()
        first = ExecutionEngine(workers=1, cache_path=path).run_one(spec)
        warm = ExecutionEngine(workers=1, cache_path=path)
        second = warm.run_one(spec)
        assert second.cache_hit
        assert second.shot == first.shot

    def test_qccd_backend_sampling(self):
        spec = JobSpec(
            circuit=qft_workload(12),
            device=QccdDevice(num_qubits=12, trap_capacity=5),
            backend="qccd", shots=200, seed=1,
        )
        result = ExecutionEngine(workers=1).run_one(spec)
        assert result.shot is not None
        assert result.shot.architecture == "QCCD"


# ----------------------------------------------------------------------
# Analysis drivers
# ----------------------------------------------------------------------
class TestAnalysis:
    def test_convergence_study_rows(self):
        rows = convergence_study(
            "small", workloads=("BV",), shot_schedule=(50, 200),
            engine=ExecutionEngine(workers=1),
        )
        assert [row.shots for row in rows] == [50, 200]
        assert all(row.workload == "BV" for row in rows)
        assert all(row.ci_low <= row.sampled_success_rate <= row.ci_high
                   for row in rows)

    def test_sampled_figure8_covers_architectures(self):
        rows = sampled_figure8(
            "small", workloads=("BV",), shots=200,
            engine=ExecutionEngine(workers=1),
        )
        architectures = {row.architecture for row in rows}
        assert any(a.startswith("TILT") for a in architectures)
        assert "Ideal TI" in architectures
        assert "QCCD" in architectures
