"""Tests for the correlated-noise scenario subsystem."""

import dataclasses
import itertools
import math

import pytest

from repro.analysis.scenario_study import (
    ScenarioRow,
    attribution_rows,
    scenario_comparison,
    scenario_figure,
    scenarios_report,
)
from repro.arch.qccd import QccdDevice
from repro.arch.tilt import TiltDevice
from repro.circuits.gate import Gate
from repro.compiler.pipeline import CompilerConfig, LinQCompiler
from repro.compiler.qccd_compiler import QccdCompiler
from repro.exceptions import ReproError, SimulationError
from repro.exec import ExecutionEngine, JobSpec, spec_key
from repro.exec.engine import reset_default_engine
from repro.noise.channels import (
    CROSSTALK,
    HEATING_BURST,
    LEAKAGE,
    ErrorSite,
    pauli_gates,
)
from repro.noise.scenarios import (
    BASELINE,
    GatePoint,
    NoiseScenario,
    ShuttlePoint,
    build_scenario_sites,
    chain_spectators,
    compose_scenarios,
    expected_log10_success,
    expected_success_rate,
    get_scenario,
    register_scenario,
    resolve_scenario,
    scenario_names,
)
from repro.sim.ideal_sim import IdealSimulator
from repro.sim.qccd_sim import QccdSimulator
from repro.sim.stochastic import StochasticSampler
from repro.sim.tilt_sim import TiltSimulator
from repro.workloads.bv import bv_workload
from repro.workloads.qft import qft_workload


@pytest.fixture(autouse=True)
def _fresh_default_engine():
    reset_default_engine()
    yield
    reset_default_engine()


@pytest.fixture(scope="module")
def qft16_compiled():
    device = TiltDevice(num_qubits=16, head_size=8)
    compiled = LinQCompiler(device, CompilerConfig()).compile(qft_workload(16))
    return device, compiled


# ----------------------------------------------------------------------
# Registry and scenario configs
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_scenarios_registered(self):
        names = scenario_names()
        for expected in ("baseline", "crosstalk", "leakage",
                         "heating_burst", "worst_case"):
            assert expected in names

    def test_unknown_scenario_raises(self):
        with pytest.raises(SimulationError):
            get_scenario("no-such-scenario")

    def test_resolve_accepts_none_string_and_object(self):
        assert resolve_scenario(None) is BASELINE
        assert resolve_scenario("crosstalk") is get_scenario("crosstalk")
        custom = NoiseScenario(name="inline", leakage_rate_2q=0.1)
        assert resolve_scenario(custom) is custom

    def test_duplicate_registration_needs_replace(self):
        scenario = NoiseScenario(name="crosstalk")
        with pytest.raises(SimulationError):
            register_scenario(scenario)

    def test_baseline_name_cannot_be_rebound(self):
        # regression: spec_key exempts the baseline *name* from hashing,
        # so rebinding it to different physics would serve stale cached
        # results; the registry refuses
        with pytest.raises(SimulationError):
            register_scenario(
                NoiseScenario(name="baseline", crosstalk_strength=1e-2),
                replace=True,
            )
        # re-registering the identical all-off config stays harmless
        register_scenario(NoiseScenario(name="baseline",
                                        description=BASELINE.description),
                          replace=True)
        assert get_scenario("baseline").is_baseline

    def test_mechanisms_and_baseline_flags(self):
        assert BASELINE.is_baseline
        assert get_scenario("crosstalk").mechanisms == ("crosstalk",)
        assert get_scenario("leakage").mechanisms == ("leakage",)
        assert get_scenario("heating_burst").mechanisms == ("heating_burst",)
        assert set(get_scenario("worst_case").mechanisms) == {
            "crosstalk", "leakage", "heating_burst"
        }

    def test_compose_takes_worst_of_each_knob(self):
        combined = compose_scenarios(
            "combo",
            NoiseScenario(name="a", crosstalk_strength=1e-3),
            NoiseScenario(name="b", burst_probability=0.2,
                          burst_error_multiplier=3.0),
        )
        assert combined.crosstalk_strength == 1e-3
        assert combined.burst_probability == 0.2
        assert combined.burst_error_multiplier == 3.0

    def test_compose_ignores_inert_default_knobs(self):
        # regression: a leakage-only scenario's default crosstalk_decay
        # must not override a tuned crosstalk scenario's value — that
        # would make the composed scenario noisier than the sum of its
        # parts and bias the attribution interaction term
        combined = compose_scenarios(
            "combo",
            NoiseScenario(name="xt", crosstalk_strength=1e-3,
                          crosstalk_decay=0.3),
            NoiseScenario(name="leak", leakage_rate_2q=1e-3),
        )
        assert combined.crosstalk_decay == 0.3
        # built-in worst_case inherits the crosstalk scenario's decay
        assert get_scenario("worst_case").crosstalk_decay == \
            get_scenario("crosstalk").crosstalk_decay

    def test_validation(self):
        with pytest.raises(SimulationError):
            NoiseScenario(name="bad", crosstalk_strength=1.5)
        with pytest.raises(SimulationError):
            NoiseScenario(name="bad", burst_error_multiplier=0.5)
        with pytest.raises(SimulationError):
            NoiseScenario(name="")
        with pytest.raises(SimulationError):
            # bursts that never scale anything are silently inert
            NoiseScenario(name="bad", burst_probability=0.2)

    def test_crosstalk_probability_decays_with_distance(self):
        scenario = NoiseScenario(name="xt", crosstalk_strength=1e-2,
                                 crosstalk_decay=0.5, crosstalk_range=2)
        assert scenario.crosstalk_probability(1) == pytest.approx(1e-2)
        assert scenario.crosstalk_probability(2) == pytest.approx(5e-3)
        assert scenario.crosstalk_probability(3) == 0.0


# ----------------------------------------------------------------------
# Site expansion
# ----------------------------------------------------------------------
class TestSiteExpansion:
    def test_crosstalk_sites_cover_spectators_in_window(self):
        scenario = NoiseScenario(name="xt", crosstalk_strength=1e-2,
                                 crosstalk_decay=0.5, crosstalk_range=3)
        points = [GatePoint(
            index=0, gate=Gate("xx", (4, 5), (0.5,)), fidelity=0.99,
            spectators=chain_spectators((4, 5), range(2, 10), 3),
        )]
        sites = build_scenario_sites(points, scenario)
        crosstalk = [s for s in sites if s.kind == CROSSTALK]
        # spectators 2,3 on the left and 6,7,8 on the right of (4,5)
        assert [s.qubits[0] for s in crosstalk] == [2, 3, 6, 7, 8]
        by_qubit = {s.qubits[0]: s.probability for s in crosstalk}
        assert by_qubit[3] == pytest.approx(1e-2)       # distance 1
        assert by_qubit[2] == pytest.approx(5e-3)       # distance 2
        assert by_qubit[8] == pytest.approx(2.5e-3)     # distance 3

    def test_leakage_sites_per_operand(self):
        scenario = NoiseScenario(name="leak", leakage_rate_2q=1e-3,
                                 leakage_rate_1q=1e-4)
        points = [
            GatePoint(index=0, gate=Gate("xx", (0, 1), (0.5,)), fidelity=1.0),
            GatePoint(index=1, gate=Gate("rx", (2,), (0.3,)), fidelity=1.0),
            GatePoint(index=2, gate=Gate("measure", (0,)), fidelity=1.0),
        ]
        sites = build_scenario_sites(points, scenario)
        leaks = [s for s in sites if s.kind == LEAKAGE]
        assert [(s.index, s.qubits[0], s.probability) for s in leaks] == [
            (0, 0, 1e-3), (0, 1, 1e-3), (1, 2, 1e-4),
        ]

    def test_burst_sites_only_for_shuttles(self):
        scenario = NoiseScenario(name="burst", burst_probability=0.25,
                                 burst_error_multiplier=2.0)
        points = [
            GatePoint(index=0, gate=Gate("xx", (0, 1), (0.5,)),
                      fidelity=0.9, window=0),
            ShuttlePoint(move=1, window=0),
            GatePoint(index=1, gate=Gate("xx", (0, 1), (0.5,)),
                      fidelity=0.9, window=0),
        ]
        sites = build_scenario_sites(points, scenario)
        assert [s.kind for s in sites] == ["pauli2", HEATING_BURST, "pauli2"]
        assert sites[1].probability == 0.25

    def test_baseline_adds_no_scenario_sites(self):
        points = [
            GatePoint(index=0, gate=Gate("xx", (0, 1), (0.5,)),
                      fidelity=0.9, spectators=((2, 1),)),
            ShuttlePoint(move=1),
        ]
        sites = build_scenario_sites(points, BASELINE)
        assert [s.kind for s in sites] == ["pauli2"]

    def test_pauli_gates_for_scenario_kinds(self):
        crosstalk = ErrorSite(index=0, kind=CROSSTALK, qubits=(3,),
                              probability=0.1)
        assert [(g.name, g.qubits) for g in pauli_gates(crosstalk, "XTY")] \
            == [("y", (3,))]
        leak = ErrorSite(index=0, kind=LEAKAGE, qubits=(3,), probability=0.1)
        assert pauli_gates(leak, "LEAK") == []
        burst = ErrorSite(index=1, kind=HEATING_BURST, qubits=(),
                          probability=0.1)
        assert pauli_gates(burst, "BURST") == []


# ----------------------------------------------------------------------
# Exact analytics (the burst dynamic program)
# ----------------------------------------------------------------------
def _brute_force_success(sites, multiplier):
    """Enumerate burst configurations; exact by construction."""
    burst_positions = [i for i, s in enumerate(sites)
                       if s.kind == HEATING_BURST]
    total = 0.0
    for triggered in itertools.product(
        (False, True), repeat=len(burst_positions)
    ):
        weight = 1.0
        for on, position in zip(triggered, burst_positions):
            p = sites[position].probability
            weight *= p if on else 1.0 - p
        survival = 1.0
        for i, site in enumerate(sites):
            if site.kind == HEATING_BURST:
                continue
            active = sum(
                1 for on, position in zip(triggered, burst_positions)
                if on and position < i
                and sites[position].window == site.window
            )
            p = site.probability
            if site.kind != "measure_flip" and active:
                p = min(1.0, p * multiplier ** active)
            survival *= 1.0 - p
        total += weight * survival
    return total


class TestAnalytics:
    def test_independent_sites_reduce_to_product(self):
        sites = [
            ErrorSite(index=0, kind="pauli2", qubits=(0, 1),
                      probability=0.1),
            ErrorSite(index=1, kind=CROSSTALK, qubits=(2,),
                      probability=0.05),
            ErrorSite(index=2, kind=LEAKAGE, qubits=(0,), probability=0.02),
        ]
        assert expected_success_rate(sites) == pytest.approx(
            0.9 * 0.95 * 0.98
        )

    def test_burst_dp_matches_brute_force(self):
        sites = [
            ErrorSite(index=0, kind="pauli2", qubits=(0, 1),
                      probability=0.05, window=0),
            ErrorSite(index=1, kind=HEATING_BURST, qubits=(),
                      probability=0.3, window=0),
            ErrorSite(index=1, kind="pauli2", qubits=(0, 1),
                      probability=0.1, window=0),
            ErrorSite(index=2, kind=HEATING_BURST, qubits=(),
                      probability=0.5, window=0),
            ErrorSite(index=2, kind="pauli1", qubits=(0,),
                      probability=0.08, window=0),
            ErrorSite(index=3, kind="measure_flip", qubits=(1,),
                      probability=0.04, window=0),
        ]
        for multiplier in (1.0, 2.0, 5.0):
            assert expected_success_rate(sites, multiplier) == pytest.approx(
                _brute_force_success(sites, multiplier), rel=1e-12
            )

    def test_bursts_in_other_windows_do_not_couple(self):
        sites = [
            ErrorSite(index=0, kind=HEATING_BURST, qubits=(),
                      probability=1.0, window=0),
            ErrorSite(index=1, kind="pauli2", qubits=(0, 1),
                      probability=0.1, window=1),
        ]
        # the burst is certain but lives in another window: no scaling
        assert expected_success_rate(sites, 10.0) == pytest.approx(0.9)
        coupled = [dataclasses.replace(sites[0], window=1), sites[1]]
        assert expected_success_rate(coupled, 10.0) == pytest.approx(0.0)

    def test_certain_error_gives_zero_success(self):
        sites = [ErrorSite(index=0, kind="pauli1", qubits=(0,),
                           probability=1.0)]
        assert expected_success_rate(sites) == 0.0
        assert expected_log10_success(sites) == float("-inf")

    def test_deep_circuit_stays_finite_in_log_space(self):
        sites = [
            ErrorSite(index=i, kind="pauli2", qubits=(0, 1), probability=0.5)
            for i in range(2000)
        ] + [ErrorSite(index=2000, kind=HEATING_BURST, qubits=(),
                       probability=0.5)]
        log10 = expected_log10_success(sites, 2.0)
        assert log10 == pytest.approx(2000 * math.log10(0.5), rel=1e-9)


# ----------------------------------------------------------------------
# Sampler semantics under correlated noise
# ----------------------------------------------------------------------
class TestCorrelatedSampling:
    def test_certain_burst_scales_downstream_error(self):
        base_p = 0.1
        sites = [
            ErrorSite(index=1, kind=HEATING_BURST, qubits=(),
                      probability=1.0, window=0),
            ErrorSite(index=1, kind="pauli1", qubits=(0,),
                      probability=base_p, window=0),
        ]
        sampler = StochasticSampler(architecture="x", circuit_name="y",
                                    sites=sites, burst_multiplier=4.0)
        result = sampler.run(4000, seed=7)
        # every shot has an active burst, so the effective rate is 0.4
        assert result.success_rate == pytest.approx(0.6, abs=0.03)
        assert result.expected_success_rate == pytest.approx(0.6)
        assert result.mechanism_counts[HEATING_BURST] == 4000

    def test_extreme_burst_count_saturates_instead_of_overflowing(self):
        # regression: with cooling disabled the whole program is one
        # window, so thousands of active bursts can overflow the float
        # pow — the effective probability must saturate at 1.0, matching
        # the analytic DP's capped product
        sites = [
            ErrorSite(index=i, kind=HEATING_BURST, qubits=(),
                      probability=1.0, window=0)
            for i in range(1200)
        ] + [ErrorSite(index=1200, kind="pauli1", qubits=(0,),
                       probability=1e-6, window=0)]
        sampler = StochasticSampler(architecture="x", circuit_name="y",
                                    sites=sites, burst_multiplier=2.0)
        result = sampler.run(3, seed=0)
        assert result.successes == 0  # saturated probability always fires
        assert result.expected_success_rate == pytest.approx(0.0)

    def test_leaked_qubit_suppresses_later_sites(self):
        sites = [
            ErrorSite(index=0, kind=LEAKAGE, qubits=(0,), probability=1.0),
            ErrorSite(index=1, kind="pauli1", qubits=(0,), probability=1.0),
            ErrorSite(index=2, kind="measure_flip", qubits=(0,),
                      probability=1.0),
            ErrorSite(index=3, kind="pauli1", qubits=(1,), probability=1.0),
        ]
        sampler = StochasticSampler(architecture="x", circuit_name="y",
                                    sites=sites)
        result = sampler.run(50, seed=3)
        assert result.successes == 0
        # the leak subsumes qubit 0's later sites; qubit 1 still errors
        assert result.errors_per_shot == tuple([2] * 50)
        assert result.mechanism_counts[LEAKAGE] == 50
        assert result.mechanism_counts["pauli1"] == 50
        assert "measure_flip" not in result.mechanism_counts
        record = result.records[0]
        assert record.errors[0] == (0, "LEAK")
        assert record.errors[1][0] == 3  # the surviving pauli on qubit 1

    def test_mechanism_shot_telemetry(self, qft16_compiled):
        device, compiled = qft16_compiled
        shot = TiltSimulator(device).run_stochastic(
            compiled, shots=800, seed=11, scenario="worst_case"
        )
        assert shot.mechanism_counts
        assert shot.mechanism_shots
        for kind, shots_hit in shot.mechanism_shots.items():
            assert shots_hit <= 800
            assert shot.mechanism_counts[kind] >= shots_hit

    def test_crosstalk_records_are_attributable(self, qft16_compiled):
        device, compiled = qft16_compiled
        scenario = NoiseScenario(name="hot-xt", crosstalk_strength=0.05,
                                 crosstalk_decay=0.5)
        shot = TiltSimulator(device).run_stochastic(
            compiled, shots=50, seed=1, scenario=scenario
        )
        labels = {label for record in shot.records
                  for _, label in record.errors}
        assert any(label.startswith("XT") for label in labels)


# ----------------------------------------------------------------------
# Sampled-vs-analytic agreement per scenario and per simulator
# ----------------------------------------------------------------------
class TestScenarioConvergence:
    @pytest.mark.parametrize("scenario", ["crosstalk", "leakage",
                                          "heating_burst", "worst_case"])
    def test_tilt_sampled_agrees_with_exact_analytics(self, scenario,
                                                      qft16_compiled):
        device, compiled = qft16_compiled
        simulator = TiltSimulator(device)
        analytic = simulator.run(compiled, scenario=scenario)
        shot = simulator.run_stochastic(compiled, shots=6000, seed=2021,
                                        scenario=scenario)
        assert shot.expected_success_rate == pytest.approx(
            analytic.success_rate, rel=1e-9
        )
        assert shot.agrees_with_analytic(analytic.success_rate)

    def test_qccd_sampled_agrees(self):
        device = QccdDevice(num_qubits=16, trap_capacity=5)
        program = QccdCompiler(device).compile(bv_workload(16))
        simulator = QccdSimulator(device)
        analytic = simulator.run(program, circuit_name="bv",
                                 scenario="worst_case")
        shot = simulator.run_stochastic(program, shots=5000, seed=2021,
                                        circuit_name="bv",
                                        scenario="worst_case")
        assert shot.agrees_with_analytic(analytic.success_rate)

    def test_ideal_sampled_agrees_and_bursts_are_inert(self, ideal16):
        simulator = IdealSimulator(ideal16)
        circuit = bv_workload(16)
        burst_only = simulator.run(circuit, scenario="heating_burst")
        baseline = simulator.run(circuit)
        # no shuttles -> the burst scenario cannot change anything
        assert burst_only.success_rate == pytest.approx(baseline.success_rate)
        analytic = simulator.run(circuit, scenario="worst_case")
        shot = simulator.run_stochastic(circuit, shots=5000, seed=2021,
                                        scenario="worst_case")
        assert shot.agrees_with_analytic(analytic.success_rate)

    def test_scenarios_strictly_reduce_success(self, qft16_compiled):
        device, compiled = qft16_compiled
        simulator = TiltSimulator(device)
        baseline = simulator.run(compiled)
        for name in ("crosstalk", "leakage", "heating_burst", "worst_case"):
            adjusted = simulator.run(compiled, scenario=name)
            assert adjusted.success_rate < baseline.success_rate


# ----------------------------------------------------------------------
# Engine integration and cache-key stability
# ----------------------------------------------------------------------
def _spec(**overrides):
    fields = dict(
        circuit=bv_workload(16),
        device=TiltDevice(num_qubits=16, head_size=8),
        config=CompilerConfig(mapper="trivial"),
    )
    fields.update(overrides)
    return JobSpec(**fields)


class TestEngineIntegration:
    def test_baseline_scenario_key_equals_pre_scenario_key(self):
        # pinned acceptance criterion: JobSpec(scenario="baseline") and a
        # spec that never mentions scenarios hash identically, so every
        # pre-existing cache entry stays valid
        assert spec_key(_spec()) == spec_key(_spec(scenario="baseline"))
        sampled = _spec(shots=100, seed=3)
        assert spec_key(sampled) == spec_key(
            dataclasses.replace(sampled, scenario="baseline")
        )

    def test_non_baseline_scenarios_get_distinct_keys(self):
        keys = {spec_key(_spec(scenario=name))
                for name in ("baseline", "crosstalk", "leakage",
                             "heating_burst", "worst_case")}
        assert len(keys) == 5

    def test_scenario_parameters_are_hashed_not_just_the_name(self):
        # regression: re-registering a name with different knobs must
        # change the content key, or a persistent cache would serve
        # results computed under the old physics
        register_scenario(NoiseScenario(name="tuned-xt",
                                        crosstalk_strength=1e-3),
                          replace=True)
        before = spec_key(_spec(scenario="tuned-xt"))
        register_scenario(NoiseScenario(name="tuned-xt",
                                        crosstalk_strength=1e-2),
                          replace=True)
        after = spec_key(_spec(scenario="tuned-xt"))
        assert before != after

    def test_unknown_scenario_rejected_at_spec_creation(self):
        with pytest.raises((ReproError, SimulationError)):
            _spec(scenario="not-a-scenario")

    def test_scenario_on_compile_only_spec_rejected(self):
        # scenarios only affect simulation; silently ignoring one on a
        # compile-only spec while hashing it would split the cache
        with pytest.raises(ReproError):
            _spec(scenario="worst_case", simulate=False)
        _spec(scenario="baseline", simulate=False)  # fine

    def test_engine_runs_scenario_jobs(self):
        engine = ExecutionEngine(workers=1)
        baseline = engine.run_one(_spec())
        adjusted = engine.run_one(_spec(scenario="worst_case"))
        assert adjusted.simulation.success_rate < \
            baseline.simulation.success_rate
        assert adjusted.simulation.extras["sites_leakage"] > 0

    def test_scenario_shot_results_round_trip_disk_cache(self, tmp_path):
        path = tmp_path / "cache.json"
        spec = _spec(scenario="worst_case", shots=300, seed=5)
        first = ExecutionEngine(workers=1, cache_path=path).run_one(spec)
        second = ExecutionEngine(workers=1, cache_path=path).run_one(spec)
        assert second.cache_hit
        assert second.shot == first.shot
        assert second.shot.mechanism_counts == first.shot.mechanism_counts


# ----------------------------------------------------------------------
# The comparison study
# ----------------------------------------------------------------------
class TestScenarioStudy:
    def test_rows_cover_scenarios_and_workloads(self):
        rows = scenario_comparison(
            "small", workloads=("BV", "QFT"),
            engine=ExecutionEngine(workers=1),
        )
        pairs = {(row.workload, row.scenario) for row in rows}
        assert len(pairs) == 10  # 2 workloads x 5 scenarios
        for row in rows:
            if row.scenario == "baseline":
                assert row.loss_decades == 0.0
            else:
                assert row.loss_decades > 0.0

    def test_attribution_sums_and_interaction(self):
        rows = scenario_comparison(
            "small", workloads=("QFT",), engine=ExecutionEngine(workers=1),
        )
        attribution = attribution_rows(rows)
        singles = [r for r in attribution if "combined" not in r.mechanism]
        combined = [r for r in attribution if "combined" in r.mechanism]
        assert {r.mechanism for r in singles} == {
            "crosstalk", "leakage", "heating_burst"
        }
        assert sum(r.share for r in singles) == pytest.approx(1.0)
        assert len(combined) == 1
        # correlated mechanisms compound: together they cost more than
        # the sum of their solo losses
        assert combined[0].interaction_decades > 0.0

    def test_sampled_columns_when_shots_requested(self):
        rows = scenario_comparison(
            "small", workloads=("BV",), shots=200,
            engine=ExecutionEngine(workers=1),
        )
        assert all(row.sampled_success_rate is not None for row in rows)
        worst = next(r for r in rows if r.scenario == "worst_case")
        assert worst.sampled_mechanism_shots

    def test_interaction_subtracts_only_the_combined_mechanisms(self):
        # regression: a two-mechanism combined scenario must not have an
        # unrelated third mechanism's solo loss subtracted from its
        # interaction term (which would push it spuriously negative)
        register_scenario(compose_scenarios(
            "xt-leak", get_scenario("crosstalk"), get_scenario("leakage"),
        ), replace=True)

        def _row(scenario, loss):
            return ScenarioRow(
                workload="BV", scenario=scenario, success_rate=1.0,
                log10_success_rate=-loss, loss_decades=loss,
                num_scenario_sites=0, expected_crosstalk=0.0,
                expected_leakage=0.0, expected_bursts=0.0,
            )

        rows = [_row("crosstalk", 0.3), _row("leakage", 0.4),
                _row("heating_burst", 0.6), _row("xt-leak", 0.75)]
        combined = [r for r in attribution_rows(rows)
                    if "combined" in r.mechanism]
        assert len(combined) == 1
        assert combined[0].interaction_decades == pytest.approx(0.05)

    def test_combined_only_attribution_has_no_fake_interaction(self):
        rows = scenario_comparison(
            "small", workloads=("BV",), scenarios=("worst_case",),
            engine=ExecutionEngine(workers=1),
        )
        attribution = attribution_rows(rows)
        assert len(attribution) == 1
        assert "no solo reference" in attribution[0].mechanism
        assert attribution[0].interaction_decades == 0.0
        assert attribution[0].loss_decades > 0.0

    def test_attribution_keeps_duplicate_mechanism_scenarios_apart(self):
        # regression: two single-mechanism scenarios probing the same
        # mechanism at different strengths must both be attributed, not
        # silently overwrite each other
        register_scenario(
            get_scenario("crosstalk").with_overrides(name="crosstalk-2x",
                                                     crosstalk_strength=4e-4),
            replace=True,
        )
        rows = scenario_comparison(
            "small", workloads=("BV",),
            scenarios=("crosstalk", "crosstalk-2x"),
            engine=ExecutionEngine(workers=1),
        )
        attribution = attribution_rows(rows)
        assert len(attribution) == 2
        labels = {r.mechanism for r in attribution}
        assert labels == {"crosstalk (crosstalk)",
                          "crosstalk (crosstalk-2x)"}
        assert sum(r.share for r in attribution) == pytest.approx(1.0)

    def test_report_works_without_baseline_in_scenario_list(self):
        # regression: the internal baseline reference makes loss_decades
        # real even when the caller omits "baseline", and attribution
        # must not crash on its absence
        report = scenarios_report(
            "small", workloads=("BV",),
            scenarios=("crosstalk", "leakage"),
            engine=ExecutionEngine(workers=1),
        )
        assert "crosstalk" in report and "leakage" in report
        rows = scenario_comparison(
            "small", workloads=("BV",),
            scenarios=("crosstalk", "leakage"),
            engine=ExecutionEngine(workers=1),
        )
        assert all(row.loss_decades > 0 for row in rows)
        assert {r.mechanism for r in attribution_rows(rows)} == {
            "crosstalk", "leakage"
        }

    def test_report_contains_table_figure_and_all_scenarios(self):
        report = scenarios_report(
            "small", workloads=("BV", "QFT", "SQRT"),
            engine=ExecutionEngine(workers=1),
        )
        for name in ("baseline", "crosstalk", "leakage", "heating_burst",
                     "worst_case"):
            assert name in report
        assert "fidelity attribution" in report
        assert "Figure S1" in report
        assert "SQRT" in report

    def test_figure_handles_empty_rows(self):
        assert scenario_figure([]) == "(no rows)"
