"""Tests for OpenQASM 2.0 export / import."""

import math

import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.qasm import circuit_to_qasm, qasm_to_circuit
from repro.circuits.random import random_circuit
from repro.circuits.unitary import allclose_up_to_global_phase, circuit_unitary
from repro.exceptions import QasmError


class TestExport:
    def test_header_and_register(self):
        text = Circuit(3).h(0).to_qasm()
        assert text.startswith("OPENQASM 2.0;")
        assert "qreg q[3];" in text

    def test_creg_only_with_measurement(self):
        assert "creg" not in Circuit(2).h(0).to_qasm()
        assert "creg c[2];" in Circuit(2).measure(0).to_qasm()

    def test_angle_rendering_uses_pi(self):
        text = Circuit(1).rz(math.pi / 2, 0).to_qasm()
        assert "rz(pi/2)" in text

    def test_negative_pi(self):
        text = Circuit(1).rx(-math.pi, 0).to_qasm()
        assert "rx(-pi)" in text

    def test_xx_emitted_as_equivalent_rxx(self):
        # xx(theta) = exp(+i theta XX) = rxx(-2 theta): the emitted angle
        # must be rescaled or the QASM denotes a different unitary.
        text = Circuit(2).xx(math.pi / 4, 0, 1).to_qasm()
        assert "rxx(-pi/2)" in text

    def test_barrier_and_measure_lines(self):
        text = Circuit(2).barrier(0, 1).measure(1).to_qasm()
        assert "barrier q[0],q[1];" in text
        assert "measure q[1] -> c[1];" in text


class TestImport:
    def test_roundtrip_simple(self):
        original = Circuit(3).h(0).cx(0, 1).rz(0.25, 2).measure(2)
        parsed = qasm_to_circuit(circuit_to_qasm(original))
        assert parsed.num_qubits == 3
        assert [g.name for g in parsed] == [g.name for g in original]

    def test_roundtrip_preserves_angles(self):
        original = Circuit(2).cp(math.pi / 8, 0, 1).rzz(1.234, 0, 1)
        parsed = qasm_to_circuit(circuit_to_qasm(original))
        for got, want in zip(parsed, original):
            assert got.qubits == want.qubits
            assert got.params == pytest.approx(want.params)

    def test_roundtrip_random_circuits(self):
        for seed in range(5):
            original = random_circuit(5, 30, seed=seed)
            parsed = qasm_to_circuit(circuit_to_qasm(original))
            assert len(parsed) == len(original)
            for got, want in zip(parsed, original):
                assert got.name in (want.name, "rxx")
                assert got.qubits == want.qubits

    def test_comments_and_blank_lines_ignored(self):
        text = """
        OPENQASM 2.0;
        include "qelib1.inc";
        // a comment
        qreg q[2];

        h q[0]; cx q[0],q[1];
        """
        parsed = qasm_to_circuit(text)
        assert [g.name for g in parsed] == ["h", "cx"]

    def test_missing_qreg_rejected(self):
        with pytest.raises(QasmError):
            qasm_to_circuit("OPENQASM 2.0;\nh q[0];")

    def test_unknown_gate_rejected(self):
        with pytest.raises(QasmError):
            qasm_to_circuit("qreg q[1];\nfrobnicate q[0];")

    def test_malicious_angle_rejected(self):
        with pytest.raises(QasmError):
            qasm_to_circuit("qreg q[1];\nrz(__import__) q[0];")


class TestRoundTripUnitary:
    """Round-tripped QASM must denote the same unitary as the source.

    Regression tests for the xx/rxx bug: ``xx(theta)`` used to be emitted
    as ``rxx(theta)``, which is a different gate
    (``xx(theta) = exp(+i theta XX) = rxx(-2 theta)``).
    """

    @pytest.mark.parametrize("theta", [math.pi / 4, -math.pi / 8, 0.37, 2.5])
    def test_xx_gate_roundtrip_preserves_unitary(self, theta):
        original = Circuit(2).xx(theta, 0, 1)
        parsed = qasm_to_circuit(circuit_to_qasm(original))
        assert allclose_up_to_global_phase(
            circuit_unitary(parsed), circuit_unitary(original)
        )

    def test_xx_roundtrip_is_angle_preserving(self):
        parsed = qasm_to_circuit(circuit_to_qasm(Circuit(2).xx(0.3, 0, 1)))
        (gate,) = parsed.gates
        assert gate.name == "rxx"
        assert gate.params[0] == pytest.approx(-0.6)

    def test_mixed_circuit_with_xx_roundtrip(self):
        original = (
            Circuit(3)
            .h(0).xx(math.pi / 4, 0, 1).rz(0.7, 1)
            .cx(1, 2).xx(-0.9, 1, 2).rxx(0.4, 0, 2)
        )
        parsed = qasm_to_circuit(circuit_to_qasm(original))
        assert allclose_up_to_global_phase(
            circuit_unitary(parsed), circuit_unitary(original)
        )

    def test_random_circuits_roundtrip_preserve_unitary(self):
        for seed in range(5):
            original = random_circuit(4, 25, seed=seed)
            parsed = qasm_to_circuit(circuit_to_qasm(original))
            assert allclose_up_to_global_phase(
                circuit_unitary(parsed), circuit_unitary(original)
            )

    def test_external_rxx_parses_as_rxx(self):
        parsed = qasm_to_circuit(
            "qreg q[2];\nrxx(pi/2) q[0],q[1];"
        )
        assert parsed.gates[0].name == "rxx"
        assert parsed.gates[0].params[0] == pytest.approx(math.pi / 2)
