"""Tests for the observability plane (repro.obs) and its engine hooks.

Four layers:

* metrics — counter/gauge/histogram semantics, the bounded histogram
  tail, registry determinism, and ``EngineStats`` as a view over one
  (including the ``job_times_s`` growth cap with a stable ``to_dict``);
* trace recorder — JSONL round trips, torn-line tolerance, span
  nesting, activation scoping, worker sidecar segments and their merge;
* traced execution — the span tree a traced engine writes, worker spans
  from the process pool, **bit-identity of traced vs untraced runs on
  every backend** (the invariant that tracing only observes), and the
  structured ``describe_config`` / manifest provenance plumbing;
* the offline report — re-parenting by spec key, golden output on the
  committed fixture trace, and the cross-run diff.
"""

from __future__ import annotations

import glob
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.arch.ideal import IdealTrappedIonDevice
from repro.arch.tilt import TiltDevice
from repro.exceptions import ReproError
from repro.exec import (
    AsyncLocalBackend,
    ExecutionEngine,
    JobSpec,
    ProcessPoolBackend,
    SerialBackend,
)
from repro.exec.engine import EngineStats
from repro.exec.sampling import run_sampled_job
from repro.exec.store import RunManifest, RunStore, collect_provenance
from repro.noise.parameters import NoiseParameters
from repro.obs import profile as obs_profile
from repro.obs.live import ProgressMonitor
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import format_diff, format_report, load_trace
from repro.obs.trace import (
    NULL_TRACE,
    TRACE_ENV_VAR,
    TraceRecorder,
    activate,
    current_trace,
    load_records,
    resolve_trace,
    worker_recorder,
)
from repro.workloads.bv import bv_workload
from repro.workloads.qft import qft_workload

REPO_ROOT = Path(__file__).parent.parent
FIXTURES = Path(__file__).parent / "fixtures"


def _small_batch() -> list[JobSpec]:
    """Analytic tilt + ideal jobs plus sampled shards, all cheap."""
    noise = NoiseParameters.paper_defaults()
    tilt = TiltDevice(num_qubits=8, head_size=4)
    specs = [
        JobSpec(circuit=bv_workload(8), device=tilt, noise=noise,
                label="tilt-a"),
        JobSpec(circuit=qft_workload(4),
                device=IdealTrappedIonDevice(num_qubits=4),
                backend="ideal", noise=noise, label="ideal-a"),
        JobSpec(circuit=qft_workload(4),
                device=IdealTrappedIonDevice(num_qubits=4),
                backend="ideal", noise=noise, shots=32, seed=3,
                label="sampled-a"),
        JobSpec(circuit=qft_workload(4),
                device=IdealTrappedIonDevice(num_qubits=4),
                backend="ideal", noise=noise, shots=32, seed=3,
                shot_offset=32, label="sampled-b"),
    ]
    return specs


def _structural(result):
    """Result content minus wall-clock noise (the bit-identity view)."""
    shot = None
    if result.shot is not None:
        shot = (result.shot.shots, result.shot.successes,
                result.shot.seed)
    return (
        result.key,
        result.backend,
        result.simulation.success_rate if result.simulation else None,
        result.stats.num_swaps if result.stats else None,
        shot,
    )


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_accumulates_and_resets(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.to_json() == 3.5
        counter.reset()
        assert counter.value == 0.0

    def test_gauge_holds_last_value(self):
        gauge = Gauge("g")
        gauge.set(4)
        gauge.set(2)
        assert gauge.to_json() == 2.0

    def test_histogram_moments_are_exact_and_tail_is_bounded(self):
        hist = Histogram("h", tail_size=8)
        for value in range(100):
            hist.observe(float(value))
        assert hist.count == 100
        assert hist.total == sum(range(100))
        assert hist.minimum == 0.0
        assert hist.maximum == 99.0
        # the tail holds only the most recent 8, oldest first
        assert hist.tail == [float(v) for v in range(92, 100)]
        # quantiles come from the tail window
        assert hist.quantile(1.0) == 99.0
        payload = hist.to_json()
        assert payload["count"] == 100
        assert payload["max"] == 99.0
        assert set(payload) == {"count", "sum", "mean", "min", "max",
                                "p50", "p90", "p99"}
        # quantiles are tail-window ranks: p99 of the 8-value tail is
        # its maximum, p50 its lower median
        assert payload["p99"] == 99.0
        assert payload["p50"] == hist.quantile(0.5)

    def test_registry_get_or_create_and_kind_clash(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")
        registry.histogram("h")
        assert "h" in registry
        assert len(registry) == 2

    def test_snapshot_is_sorted_and_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.histogram("c").observe(1.0)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a", "b", "c"]
        json.dumps(snapshot)  # must serialise as-is
        registry.reset()
        assert registry.counter("a").value == 0.0
        assert registry.histogram("c").count == 0


class TestEngineStats:
    def test_counter_surface_still_reads_and_writes(self):
        stats = EngineStats()
        stats.cache_hits += 3
        stats.jobs_submitted = 5
        assert stats.cache_hits == 3
        assert stats.cache_misses == 2
        assert isinstance(stats.cache_hits, int)

    def test_to_dict_shape_is_stable(self):
        stats = EngineStats()
        payload = stats.to_dict()
        assert list(payload) == [
            "jobs_submitted", "jobs_executed", "cache_hits",
            "deduplicated", "cache_misses", "cache_hit_rate",
            "execution_time_s", "batch_time_s",
        ]
        json.dumps(payload)

    def test_job_times_growth_is_capped(self):
        stats = EngineStats()
        for value in range(EngineStats.JOB_TIME_TAIL * 2):
            stats._job_times.observe(float(value))
        assert len(stats.job_times_s) == EngineStats.JOB_TIME_TAIL
        # the exact totals survive the cap
        hist = stats.metrics.histogram("engine.job_time_s")
        assert hist.count == EngineStats.JOB_TIME_TAIL * 2
        stats.reset()
        assert stats.job_times_s == []


# ----------------------------------------------------------------------
# Trace recorder mechanics
# ----------------------------------------------------------------------
class TestTraceRecorder:
    def test_span_nesting_round_trips_through_jsonl(self, tmp_path):
        trace = TraceRecorder(tmp_path / "t.jsonl")
        with trace.span("outer", a=1) as outer:
            with trace.span("inner"):
                trace.event("tick", n=2)
            outer.add(b=2)
        records = load_records(tmp_path / "t.jsonl")
        by_name = {r.get("name"): r for r in records if "name" in r}
        inner, tick = by_name["inner"], by_name["tick"]
        outer_rec = by_name["outer"]
        assert outer_rec["parent"] is None
        assert outer_rec["attrs"] == {"a": 1, "b": 2}
        assert inner["parent"] == outer_rec["id"]
        assert tick["span"] == inner["id"]
        assert records[0]["kind"] == "meta"

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace = TraceRecorder(path)
        with trace.span("kept"):
            pass
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"v":1,"kind":"span","na')  # killed mid-append
        names = [r.get("name") for r in load_records(path)]
        assert names == [None, "kept"]

    def test_activate_scopes_and_restores(self, tmp_path):
        trace = TraceRecorder(tmp_path / "t.jsonl")
        assert current_trace() is NULL_TRACE
        with activate(trace):
            assert current_trace() is trace
            with activate(NULL_TRACE):
                assert current_trace() is NULL_TRACE
            assert current_trace() is trace
        assert current_trace() is NULL_TRACE

    def test_resolve_trace_env_var_and_sharing(self, tmp_path, monkeypatch):
        monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
        assert resolve_trace(None) is NULL_TRACE
        target = tmp_path / "env.jsonl"
        monkeypatch.setenv(TRACE_ENV_VAR, str(target))
        via_env = resolve_trace(None)
        assert via_env.enabled and via_env.path == str(target)
        # same path -> same recorder (one writer per file per process)
        assert resolve_trace(str(target)) is via_env

    def test_worker_segments_merge_into_parent(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace = TraceRecorder(path)
        sidecar = worker_recorder(str(path))
        with sidecar.span("job.execute", spec_key="k1"):
            pass
        assert glob.glob(str(path) + ".*")  # sidecar exists on disk
        merged = trace.merge_segments()
        assert merged == 1
        assert glob.glob(str(path) + ".*") == []  # folded and unlinked
        names = [r.get("name") for r in load_records(path)]
        assert names.count("job.execute") == 1

    def test_null_trace_is_inert(self):
        with NULL_TRACE.span("anything", x=1) as span:
            span.add(y=2)
        NULL_TRACE.event("nothing")
        NULL_TRACE.metrics({})
        assert NULL_TRACE.merge_segments() == 0
        assert NULL_TRACE.path is None


# ----------------------------------------------------------------------
# Traced execution
# ----------------------------------------------------------------------
class TestTracedEngine:
    def test_serial_batch_writes_the_span_tree(self, tmp_path):
        path = tmp_path / "t.jsonl"
        engine = ExecutionEngine(workers=1, trace=path)
        engine.run(_small_batch())
        view = load_trace(str(path))
        assert len(view.named("engine.batch")) == 1
        batch = view.named("engine.batch")[0]
        child_names = sorted({c.name for c in batch.children})
        assert child_names == ["engine.cache_lookup", "engine.dispatch",
                               "engine.flush"]
        assert batch.attrs["executed"] == 4
        assert len(view.named("job.execute")) == 4
        done_events = [e for e in view.events
                       if e.get("name") == "job.done"]
        assert len(done_events) == 4
        assert view.metrics  # snapshot written after the batch

    def test_cache_hits_show_in_second_batch_span(self, tmp_path):
        path = tmp_path / "t.jsonl"
        engine = ExecutionEngine(workers=1, trace=path)
        engine.run(_small_batch())
        engine.run(_small_batch())
        batches = load_trace(str(path)).named("engine.batch")
        assert [b.attrs["cache_hits"] for b in batches] == [0, 4]
        assert [b.attrs["executed"] for b in batches] == [4, 0]

    def test_process_pool_worker_spans_merge_back(self, tmp_path):
        path = tmp_path / "t.jsonl"
        engine = ExecutionEngine(workers=2, backend="process", trace=path)
        engine.run(_small_batch())
        assert glob.glob(str(path) + ".*") == []  # no leftover sidecars
        view = load_trace(str(path))
        jobs = view.named("job.execute")
        assert len(jobs) == 4
        assert any(j.pid != os.getpid() for j in jobs), (
            "expected job spans from pool worker processes"
        )
        # every worker span was re-parented under this trace's spans
        for job in jobs:
            assert job.parent in view.spans

    @pytest.mark.parametrize("backend", ["serial", "process", "async"])
    def test_traced_and_untraced_results_are_bit_identical(
            self, backend, tmp_path, monkeypatch):
        specs = _small_batch()
        plain = ExecutionEngine(workers=2, backend=backend).run(specs)
        traced = ExecutionEngine(
            workers=2, backend=backend, trace=tmp_path / "t.jsonl",
        ).run(specs)
        # full instrumentation — live monitor, per-job profiling and a
        # history ledger — must stay pure observation too
        monkeypatch.setenv(obs_profile.PROFILE_ENV_VAR, "1")
        obs_profile.refresh_mode()
        try:
            trace = TraceRecorder(tmp_path / "m.jsonl")
            ProgressMonitor(
                trace, heartbeat_path=tmp_path / "hb.jsonl",
            ).attach()
            monitored = ExecutionEngine(
                workers=2, backend=backend, trace=trace,
                history=tmp_path / "history.jsonl",
            ).run(specs)
        finally:
            monkeypatch.delenv(obs_profile.PROFILE_ENV_VAR, raising=False)
            obs_profile.refresh_mode()
        assert ([_structural(r) for r in plain]
                == [_structural(r) for r in traced]
                == [_structural(r) for r in monitored])

    def test_sampling_fanout_span_wraps_the_shard_batch(self, tmp_path):
        path = tmp_path / "t.jsonl"
        engine = ExecutionEngine(workers=1, trace=path)
        spec = _small_batch()[2]
        run_sampled_job(spec, shards=2, engine=engine)
        view = load_trace(str(path))
        fanouts = view.named("sampling.fanout")
        assert len(fanouts) == 1
        assert fanouts[0].attrs["shards"] == 2
        child_names = {c.name for c in fanouts[0].children}
        assert "engine.batch" in child_names

    def test_tracing_off_leaves_no_file(self, tmp_path, monkeypatch):
        monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
        engine = ExecutionEngine(workers=1)
        assert engine.trace is NULL_TRACE
        engine.run(_small_batch()[:2])
        assert list(tmp_path.iterdir()) == []


# ----------------------------------------------------------------------
# Structured backend description + manifest provenance
# ----------------------------------------------------------------------
class TestDescribeConfig:
    def test_backend_configs_are_structured(self):
        assert SerialBackend().describe_config() == {
            "backend": "serial", "workers": 1,
        }
        process = ProcessPoolBackend(workers=3).describe_config()
        assert process["backend"] == "process"
        assert process["workers"] == 3
        assert process["chunk_size"] is None
        assert process["chunk_groups_per_worker"] == 4
        assert AsyncLocalBackend(workers=2).describe_config() == {
            "backend": "async", "executor": "thread", "workers": 2,
        }

    def test_engine_reports_resolved_backend_config(self):
        engine = ExecutionEngine(workers=2, backend="process")
        config = engine.describe_backend_config()
        assert config["backend"] == "process"
        assert config["workers"] == 2
        assert engine.describe_backend_config(workers=4)["workers"] == 4

    def test_manifest_round_trips_backend_config(self, tmp_path):
        store = RunStore(tmp_path / "store")
        manifest = RunManifest(
            store_root=store.root,
            backend="process(workers=2, chunk_size=auto)",
            backend_config={"backend": "process", "workers": 2},
        )
        store.write_manifest(manifest)
        loaded = store.read_manifest()
        assert loaded.backend_config == {"backend": "process",
                                         "workers": 2}
        # legacy manifests without the field still load
        legacy = RunManifest.from_json({"store_root": store.root})
        assert legacy.backend_config == {}

    def test_provenance_records_the_trace_path(self):
        payload = collect_provenance(seed=1, shots=2, trace="/tmp/t.jsonl")
        assert payload["trace"] == "/tmp/t.jsonl"
        assert collect_provenance()["trace"] is None


# ----------------------------------------------------------------------
# The offline report
# ----------------------------------------------------------------------
class TestReport:
    def test_orphan_job_spans_are_reparented_by_spec_key(self):
        view = load_trace(str(FIXTURES / "trace_fixture.jsonl"))
        jobs = {j.attrs["spec_key"]: j for j in view.named("job.execute")}
        dispatch = view.named("engine.dispatch")[0]
        assert jobs["kA"].parent == dispatch.id
        assert jobs["kB"].parent == dispatch.id

    def test_golden_report_output(self):
        view = load_trace(str(FIXTURES / "trace_fixture.jsonl"))
        expected = (FIXTURES / "trace_fixture_report.txt").read_text(
            encoding="utf-8"
        )
        assert format_report(view) == expected

    def test_diff_of_a_trace_with_itself_is_zero(self):
        view = load_trace(str(FIXTURES / "trace_fixture.jsonl"))
        other = load_trace(str(FIXTURES / "trace_fixture.jsonl"))
        rendered = format_diff(view, other)
        delta_column = [line.split()[-1] for line in
                        rendered.splitlines()[5:]]
        assert all(value in ("+0", "+0.0ms") for value in delta_column), (
            rendered
        )

    def test_cli_module_invocation(self, tmp_path):
        completed = subprocess.run(
            (sys.executable, "-m", "repro.obs.report",
             str(FIXTURES / "trace_fixture.jsonl")),
            capture_output=True, text=True, timeout=60,
            cwd=REPO_ROOT,
            env={**os.environ,
                 "PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert completed.returncode == 0, completed.stderr
        assert "Span tree" in completed.stdout
        assert "Per-backend latency" in completed.stdout

    @pytest.mark.parametrize("content", [
        "",                                  # crashed before first flush
        '{"v": 1, "kind": "span", "na',      # single torn line
    ], ids=["empty", "torn-only"])
    def test_cli_handles_recordless_trace_cleanly(self, tmp_path, content):
        """An existing but empty (or all-torn) trace is a calm exit 0:
        CI pipelines render the report unconditionally and a run that
        died before its first flush must not go red twice."""
        recordless = tmp_path / "empty.jsonl"
        recordless.write_text(content, encoding="utf-8")
        completed = subprocess.run(
            (sys.executable, "-m", "repro.obs.report", str(recordless)),
            capture_output=True, text=True, timeout=60,
            cwd=REPO_ROOT,
            env={**os.environ,
                 "PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert completed.returncode == 0, completed.stderr
        assert "no trace records" in completed.stdout

    def test_cli_rejects_missing_trace_file(self, tmp_path):
        completed = subprocess.run(
            (sys.executable, "-m", "repro.obs.report",
             str(tmp_path / "never_written.jsonl")),
            capture_output=True, text=True, timeout=60,
            cwd=REPO_ROOT,
            env={**os.environ,
                 "PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert completed.returncode == 1
        assert "no such trace file" in completed.stderr

    def test_report_on_a_real_traced_run(self, tmp_path):
        """A live end-to-end check: trace a run, render its report."""
        path = tmp_path / "t.jsonl"
        engine = ExecutionEngine(workers=2, backend="process", trace=path)
        engine.run(_small_batch())
        engine.run(_small_batch())
        rendered = format_report(load_trace(str(path)))
        assert "engine.batch" in rendered
        assert "process" in rendered
        assert "cache hits" in rendered
