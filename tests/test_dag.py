"""Unit tests for circuit dependency analysis (CircuitDAG, FrontierTracker)."""

import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.dag import CircuitDAG, FrontierTracker
from repro.exceptions import CircuitError


def sample_circuit() -> Circuit:
    """h(0); h(1); cx(0,1); x(1); cx(1,2)."""
    return Circuit(3).h(0).h(1).cx(0, 1).x(1).cx(1, 2)


class TestCircuitDAG:
    def test_front_layer(self):
        dag = CircuitDAG(sample_circuit())
        assert dag.front_layer() == [0, 1]

    def test_predecessors_and_successors(self):
        dag = CircuitDAG(sample_circuit())
        assert dag.predecessors(2) == [0, 1]
        assert dag.successors(2) == [3]
        assert dag.successors(4) == []

    def test_topological_order_is_valid(self):
        dag = CircuitDAG(sample_circuit())
        order = dag.topological_order()
        position = {node: i for i, node in enumerate(order)}
        for node in range(len(sample_circuit())):
            for pred in dag.predecessors(node):
                assert position[pred] < position[node]

    def test_layers_match_depth(self):
        circuit = sample_circuit()
        dag = CircuitDAG(circuit)
        layers = dag.layers()
        assert sum(len(layer) for layer in layers) == len(circuit)
        assert len(layers) == circuit.depth()

    def test_depth_index_monotone_along_edges(self):
        dag = CircuitDAG(sample_circuit())
        depth = dag.depth_index()
        for a, b in dag.graph.edges:
            assert depth[a] < depth[b]

    def test_gate_accessor(self):
        circuit = sample_circuit()
        dag = CircuitDAG(circuit)
        assert dag.gate(2) == circuit[2]


class TestFrontierTracker:
    def test_initial_ready_set(self):
        tracker = FrontierTracker(sample_circuit())
        assert tracker.ready() == {0, 1}
        assert tracker.remaining() == 5

    def test_complete_releases_successors(self):
        tracker = FrontierTracker(sample_circuit())
        tracker.complete(0)
        assert 2 not in tracker.ready()
        newly = tracker.complete(1)
        assert newly == [2]
        assert tracker.ready() == {2}

    def test_complete_unready_gate_raises(self):
        tracker = FrontierTracker(sample_circuit())
        with pytest.raises(CircuitError):
            tracker.complete(2)

    def test_complete_many_and_done(self):
        tracker = FrontierTracker(sample_circuit())
        tracker.complete_many([0, 1, 2, 3, 4])
        assert tracker.is_done()
        assert tracker.remaining() == 0

    def test_clone_is_independent(self):
        tracker = FrontierTracker(sample_circuit())
        clone = tracker.clone()
        clone.complete(0)
        assert 0 in tracker.ready()
        assert 0 not in clone.ready()

    def test_greedy_closure_respects_predicate(self):
        circuit = sample_circuit()
        tracker = FrontierTracker(circuit)
        executed = tracker.greedy_closure(lambda g: all(q <= 1 for q in g.qubits))
        # Gates on qubits {0,1} only: h(0), h(1), cx(0,1), x(1).
        assert sorted(executed) == [0, 1, 2, 3]
        # The tracker itself is untouched.
        assert tracker.ready() == {0, 1}

    def test_greedy_closure_order_is_replayable(self):
        circuit = sample_circuit()
        tracker = FrontierTracker(circuit)
        executed = tracker.greedy_closure(lambda g: True)
        tracker.complete_many(executed)  # must not raise
        assert tracker.is_done()

    def test_greedy_closure_empty_when_nothing_accepted(self):
        tracker = FrontierTracker(sample_circuit())
        assert tracker.greedy_closure(lambda g: False) == []

    def test_restricted_index_subset(self):
        circuit = sample_circuit()
        tracker = FrontierTracker(circuit, indices=[2, 3, 4])
        assert tracker.ready() == {2}
        tracker.complete(2)
        assert tracker.ready() == {3}
