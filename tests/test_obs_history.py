"""Tests for repro.obs.history: the persistent cross-run run ledger.

Pins the concurrency contract (per-writer segments, torn-line-tolerant
merge-on-load, duplicate-free two-process appends, idempotent compact),
the engine/search integration (one summarized record per traced batch
and per search, with backend config, provenance and latency quantiles
composed engine-side), and the CLI (golden trend/diff rendering,
empty-ledger exit 0, the ``--check`` trend gate).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.arch.ideal import IdealTrappedIonDevice
from repro.arch.tilt import TiltDevice
from repro.exec import ExecutionEngine, JobSpec
from repro.exec.engine import reset_default_engine
from repro.noise.parameters import NoiseParameters
from repro.obs.history import (
    HISTORY_ENV_VAR,
    HISTORY_VERSION,
    MIN_CHECK_HISTORY,
    RunLedger,
    check_trends,
    flatten_record,
    load_ledger,
    main as history_main,
    new_record,
    resolve_ledger,
)
from repro.search import GridStrategy, SearchSpace, config_knob, run_search
from repro.workloads.bv import bv_workload
from repro.workloads.qft import qft_workload

REPO_ROOT = Path(__file__).parent.parent
FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(autouse=True)
def _fresh_default_engine():
    reset_default_engine()
    yield
    reset_default_engine()


def _specs() -> list[JobSpec]:
    noise = NoiseParameters.paper_defaults()
    return [
        JobSpec(circuit=bv_workload(8),
                device=TiltDevice(num_qubits=8, head_size=4),
                noise=noise, label="tilt-a"),
        JobSpec(circuit=qft_workload(4),
                device=IdealTrappedIonDevice(num_qubits=4),
                backend="ideal", noise=noise, label="ideal-a"),
    ]


# ----------------------------------------------------------------------
# Ledger mechanics
# ----------------------------------------------------------------------
class TestLedger:
    def test_append_lands_in_private_segment(self, tmp_path):
        path = tmp_path / "history.jsonl"
        ledger = RunLedger(path)
        record_id = ledger.append(new_record("engine.batch", label="x"))
        assert not path.exists()
        segments = list(tmp_path.glob("history.jsonl.*.seg"))
        assert len(segments) == 1
        (record,) = ledger.records()
        assert record["id"] == record_id
        assert record["kind"] == "engine.batch"
        assert record["v"] == HISTORY_VERSION
        assert record["pid"] == os.getpid()
        assert record["ts"] > 0
        assert record["host"]

    def test_load_merges_and_dedupes_by_id(self, tmp_path):
        path = tmp_path / "h.jsonl"
        shared = {"v": 1, "id": "dup", "ts": 1.0, "kind": "engine.batch"}
        path.write_text(json.dumps(shared) + "\n", encoding="utf-8")
        segment = tmp_path / "h.jsonl.host-1-abc.seg"
        segment.write_text(
            json.dumps(shared) + "\n"
            + json.dumps({"v": 1, "id": "new", "ts": 2.0,
                          "kind": "engine.batch"}) + "\n",
            encoding="utf-8",
        )
        records = load_ledger(path)
        assert [r["id"] for r in records] == ["dup", "new"]

    def test_torn_blank_and_foreign_lines_are_skipped(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text(
            json.dumps({"v": 1, "id": "ok", "ts": 1.0,
                        "kind": "engine.batch"}) + "\n"
            + "\n"
            + json.dumps({"v": 99, "id": "foreign", "ts": 2.0}) + "\n"
            + '{"v": 1, "id": "torn", "ts": 3',
            encoding="utf-8",
        )
        assert [r["id"] for r in load_ledger(path)] == ["ok"]

    def test_compact_folds_segments_and_is_idempotent(self, tmp_path):
        path = tmp_path / "h.jsonl"
        ledger = RunLedger(path)
        ids = [ledger.append(new_record("engine.batch", label=str(i)))
               for i in range(3)]
        assert ledger.compact() == 3
        assert path.exists()
        assert list(tmp_path.glob("h.jsonl.*.seg")) == []
        assert [r["id"] for r in load_ledger(path)] == ids
        # nothing left to claim; re-compacting never duplicates
        assert ledger.compact() == 0
        assert [r["id"] for r in load_ledger(path)] == ids

    def test_two_processes_append_without_losing_or_duplicating(
            self, tmp_path):
        """The RunStore contract: concurrent writers, merged read."""
        path = tmp_path / "h.jsonl"
        script = (
            "import sys\n"
            "from repro.obs.history import RunLedger, new_record\n"
            "ledger = RunLedger(sys.argv[1])\n"
            "for i in range(25):\n"
            "    ledger.append(new_record('engine.batch',"
            " label=f'{sys.argv[2]}-{i}'))\n"
        )
        env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
        writers = [
            subprocess.Popen((sys.executable, "-c", script, str(path), tag),
                             env=env, cwd=REPO_ROOT)
            for tag in ("a", "b")
        ]
        for writer in writers:
            assert writer.wait(timeout=60) == 0
        records = load_ledger(path)
        assert len(records) == 50
        assert len({r["id"] for r in records}) == 50
        labels = {r["label"] for r in records}
        assert labels == {f"{tag}-{i}" for tag in "ab" for i in range(25)}
        # a third party can compact the whole set into the main file
        assert RunLedger(path).compact() == 50
        assert len(load_ledger(path)) == 50

    def test_resolve_ledger_shares_one_writer_per_path(
            self, tmp_path, monkeypatch):
        monkeypatch.delenv(HISTORY_ENV_VAR, raising=False)
        assert resolve_ledger(None) is None
        ledger = RunLedger(tmp_path / "h.jsonl")
        assert resolve_ledger(ledger) is ledger
        via_path = resolve_ledger(tmp_path / "shared.jsonl")
        assert resolve_ledger(str(tmp_path / "shared.jsonl")) is via_path
        monkeypatch.setenv(HISTORY_ENV_VAR, str(tmp_path / "shared.jsonl"))
        assert resolve_ledger(None) is via_path


# ----------------------------------------------------------------------
# Engine / search integration
# ----------------------------------------------------------------------
class TestEngineHistory:
    def test_traced_batch_appends_one_summarized_record(self, tmp_path):
        history = tmp_path / "history.jsonl"
        trace = tmp_path / "t.jsonl"
        engine = ExecutionEngine(workers=1, trace=trace, history=history)
        engine.run(_specs())
        (record,) = load_ledger(history)
        assert record["kind"] == "engine.batch"
        assert record["trace"] == str(trace)
        assert record["backend"]["backend"] == "serial"
        assert record["cache"]["jobs"] == 2
        assert record["cache"]["executed"] == 2
        assert record["cache"]["hit_ratio"] == 0.0
        assert record["latency"]["count"] == 2
        assert set(record["latency"]) >= {"p50", "p90", "p99"}
        assert record["provenance"]["python"]
        assert "git_commit" in record["provenance"]
        flat = flatten_record(record)
        assert flat["cache.hit_ratio"] == 0.0
        assert flat["latency.p99"] > 0

    def test_warm_batch_records_full_hit_ratio(self, tmp_path):
        history = tmp_path / "history.jsonl"
        engine = ExecutionEngine(workers=1, history=history)
        engine.run(_specs())
        engine.run(_specs())
        records = load_ledger(history)
        assert [r["cache"]["hit_ratio"] for r in records] == [0.0, 1.0]
        # untraced engines still record history — just without a trace
        assert all("trace" not in r for r in records)

    def test_history_off_leaves_no_files(self, tmp_path, monkeypatch):
        monkeypatch.delenv(HISTORY_ENV_VAR, raising=False)
        monkeypatch.chdir(tmp_path)
        engine = ExecutionEngine(workers=1)
        assert engine.history is None
        engine.run(_specs())
        assert list(tmp_path.iterdir()) == []

    def test_search_appends_a_search_run_record(self, tmp_path):
        history = tmp_path / "history.jsonl"
        engine = ExecutionEngine(workers=1, history=history)
        space = SearchSpace(
            circuit=qft_workload(8),
            device=TiltDevice(num_qubits=8, head_size=8),
            knobs=[config_knob("max_swap_len", [7, 5])],
            config=None,
            noise=NoiseParameters.paper_defaults(),
        )
        result = run_search(space, GridStrategy(), engine=engine)
        records = load_ledger(history)
        kinds = [r["kind"] for r in records]
        # one record per engine batch (= search round) + the search
        assert kinds == ["engine.batch", "search.run"]
        search_record = records[-1]
        assert search_record["label"] == "grid"
        assert search_record["extra"]["strategy"] == "grid"
        assert search_record["extra"]["rounds"] == 1
        assert search_record["extra"]["points"] == len(result.points)
        assert search_record["extra"]["jobs_submitted"] == result.num_jobs
        assert search_record["metrics"] == result.engine_stats


# ----------------------------------------------------------------------
# Trend analysis and the CLI
# ----------------------------------------------------------------------
def _trend_ledger(tmp_path, p50_values):
    path = tmp_path / "h.jsonl"
    ledger = RunLedger(path)
    for index, p50 in enumerate(p50_values):
        ledger.append(new_record(
            "engine.batch",
            latency={"p50": p50},
            cache={"hit_ratio": 0.5},
        ) | {"ts": 1000.0 + index})
    return path


class TestTrendGate:
    def test_stable_history_passes(self, tmp_path):
        records = load_ledger(_trend_ledger(tmp_path, [0.01] * 4))
        ok, lines = check_trends(records)
        assert ok, "\n".join(lines)
        assert lines[-1].startswith("trend gate PASSED")

    def test_latency_spike_fails(self, tmp_path):
        records = load_ledger(_trend_ledger(tmp_path, [0.01, 0.01, 0.01,
                                                       0.05]))
        ok, lines = check_trends(records)
        assert not ok
        assert any("TREND REGRESSION" in line and "latency.p50" in line
                   for line in lines)

    def test_young_ledger_passes_vacuously(self, tmp_path):
        records = load_ledger(
            _trend_ledger(tmp_path, [0.01] * (MIN_CHECK_HISTORY - 1))
        )
        ok, lines = check_trends(records)
        assert ok
        assert any("skipped" in line for line in lines)

    def test_improvements_pass(self, tmp_path):
        records = load_ledger(_trend_ledger(tmp_path,
                                            [0.05, 0.05, 0.05, 0.01]))
        ok, _ = check_trends(records)
        assert ok


class TestCli:
    def test_golden_trend_output(self, capsys):
        assert history_main([str(FIXTURES / "history_fixture.jsonl")]) == 0
        expected = (FIXTURES / "history_fixture_trend.txt").read_text(
            encoding="utf-8"
        )
        assert capsys.readouterr().out == expected

    def test_golden_diff_output(self, capsys):
        assert history_main([str(FIXTURES / "history_fixture.jsonl"),
                             "--diff", "0", "3"]) == 0
        expected = (FIXTURES / "history_fixture_diff.txt").read_text(
            encoding="utf-8"
        )
        assert capsys.readouterr().out == expected

    @pytest.mark.parametrize("content", [
        None,                              # never created
        "",                                # created, nothing flushed
        '{"v": 1, "kind": "engine.b',      # single torn line
    ], ids=["missing", "empty", "torn-only"])
    def test_recordless_ledger_is_a_clean_exit_zero(
            self, tmp_path, capsys, content):
        path = tmp_path / "h.jsonl"
        if content is not None:
            path.write_text(content, encoding="utf-8")
        assert history_main([str(path)]) == 0
        assert "no history records" in capsys.readouterr().out

    def test_diff_index_out_of_range_exits_two(self, tmp_path, capsys):
        path = _trend_ledger(tmp_path, [0.01])
        assert history_main([str(path), "--diff", "0", "7"]) == 2
        assert "out of range" in capsys.readouterr().out

    def test_check_flag_gates_exit_code(self, tmp_path, capsys):
        good = _trend_ledger(tmp_path, [0.01] * 4)
        assert history_main([str(good), "--check"]) == 0
        bad = tmp_path / "bad" / "h.jsonl"
        ledger = RunLedger(bad)
        for index, p50 in enumerate([0.01, 0.01, 0.01, 0.05]):
            ledger.append(new_record("engine.batch",
                                     latency={"p50": p50})
                          | {"ts": 1000.0 + index})
        assert history_main([str(bad), "--check"]) == 1
        assert "TREND REGRESSION" in capsys.readouterr().out

    def test_compact_flag_folds_segments(self, tmp_path, capsys):
        path = _trend_ledger(tmp_path, [0.01, 0.02])
        assert list(tmp_path.glob("h.jsonl.*.seg"))
        assert history_main([str(path), "--compact"]) == 0
        assert "compacted 2 record(s)" in capsys.readouterr().out
        assert list(tmp_path.glob("h.jsonl.*.seg")) == []
        assert len(load_ledger(path)) == 2

    def test_module_invocation_contract(self):
        completed = subprocess.run(
            (sys.executable, "-m", "repro.obs.history",
             str(FIXTURES / "history_fixture.jsonl"), "--metric", "all"),
            capture_output=True, text=True, timeout=60,
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert completed.returncode == 0, completed.stderr
        assert "Run ledger: 5 records" in completed.stdout
        assert "extra.rounds" in completed.stdout
