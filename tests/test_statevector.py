"""Tests for the dense state-vector simulator."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.random import random_circuit
from repro.circuits.unitary import circuit_unitary
from repro.compiler.decompose import decompose_to_native
from repro.exceptions import SimulationError
from repro.sim.statevector import (
    StatevectorSimulator,
    states_equal_up_to_global_phase,
)


class TestBasics:
    def test_initial_state_is_all_zero(self, statevector):
        state = statevector.run(Circuit(3))
        assert np.isclose(state[0], 1.0)

    def test_bell_state(self, statevector, bell_circuit):
        probabilities = statevector.probabilities(bell_circuit)
        assert probabilities == pytest.approx([0.5, 0, 0, 0.5], abs=1e-12)

    def test_ghz_state(self, statevector, ghz5):
        probabilities = statevector.probabilities(ghz5)
        assert probabilities[0] == pytest.approx(0.5)
        assert probabilities[-1] == pytest.approx(0.5)

    def test_measure_and_barrier_are_ignored(self, statevector):
        circuit = Circuit(1).h(0).barrier().measure(0)
        state = statevector.run(circuit)
        assert np.allclose(np.abs(state) ** 2, [0.5, 0.5])

    def test_custom_initial_state(self, statevector):
        initial = np.zeros(2, dtype=complex)
        initial[1] = 1.0
        state = statevector.run(Circuit(1).x(0), initial_state=initial)
        assert np.isclose(abs(state[0]), 1.0)

    def test_wrong_initial_state_dimension(self, statevector):
        with pytest.raises(SimulationError):
            statevector.run(Circuit(2), initial_state=np.ones(2))

    def test_width_cap(self):
        simulator = StatevectorSimulator(max_qubits=3)
        with pytest.raises(SimulationError):
            simulator.run(Circuit(4))

    def test_matches_circuit_unitary(self, statevector):
        for seed in range(5):
            circuit = random_circuit(4, 20, seed=seed)
            state = statevector.run(circuit)
            expected = circuit_unitary(circuit)[:, 0]
            assert states_equal_up_to_global_phase(state, expected)


class TestReadout:
    def test_sample_counts_sum_to_shots(self, statevector, bell_circuit):
        counts = statevector.sample(bell_circuit, shots=256, seed=1)
        assert sum(counts.values()) == 256
        assert set(counts) <= {"00", "11"}

    def test_sample_requires_positive_shots(self, statevector, bell_circuit):
        with pytest.raises(SimulationError):
            statevector.sample(bell_circuit, shots=0)

    def test_most_probable(self, statevector):
        circuit = Circuit(3).x(0).x(2)
        assert statevector.most_probable(circuit) == "101"

    def test_expectation_z(self, statevector):
        assert statevector.expectation_z(Circuit(1), 0) == pytest.approx(1.0)
        assert statevector.expectation_z(Circuit(1).x(0), 0) == pytest.approx(-1.0)
        assert statevector.expectation_z(Circuit(1).h(0), 0) == pytest.approx(0.0, abs=1e-12)

    def test_expectation_z_validates_qubit(self, statevector):
        with pytest.raises(SimulationError):
            statevector.expectation_z(Circuit(1), 3)


class TestEquivalences:
    def test_native_decomposition_preserves_state(self, statevector):
        for seed in range(4):
            circuit = random_circuit(4, 25, seed=100 + seed)
            native = decompose_to_native(circuit)
            assert states_equal_up_to_global_phase(
                statevector.run(circuit), statevector.run(native)
            )

    def test_swap_symmetry(self, statevector):
        circuit = Circuit(2).x(0).swap(0, 1)
        assert statevector.most_probable(circuit) == "01"

    def test_global_phase_comparison_helper(self):
        state = np.array([1.0, 0.0], dtype=complex)
        assert states_equal_up_to_global_phase(state, np.exp(1j) * state)
        assert not states_equal_up_to_global_phase(state, np.array([0.0, 1.0]))
