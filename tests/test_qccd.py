"""Tests for the QCCD compiler and simulator."""

import pytest

from repro.arch.qccd import QccdDevice
from repro.circuits.circuit import Circuit
from repro.compiler.qccd_compiler import (
    QccdCompiler,
    QccdGateEvent,
    QccdShuttleEvent,
    compile_for_qccd,
)
from repro.exceptions import CompilationError
from repro.noise.parameters import NoiseParameters
from repro.sim.qccd_sim import QccdSimulator
from repro.workloads.qaoa import qaoa_workload
from repro.workloads.qft import qft_workload


class TestQccdCompiler:
    def test_intra_trap_circuit_needs_no_shuttles(self, qccd16):
        circuit = Circuit(16)
        circuit.cx(0, 1).cx(1, 2).cx(2, 3)  # all inside trap 0
        program = QccdCompiler(qccd16).compile(circuit)
        assert program.num_shuttles == 0
        assert len(program.gate_events) > 0

    def test_cross_trap_gate_generates_transport(self, qccd16):
        circuit = Circuit(16).cx(0, 15)
        program = QccdCompiler(qccd16).compile(circuit)
        assert program.num_shuttles >= 1
        shuttle = program.shuttle_events[0]
        assert shuttle.splits == 1 and shuttle.merges == 1
        assert shuttle.hops == qccd16.trap_distance(
            qccd16.initial_trap_of(0), qccd16.initial_trap_of(15)
        )

    def test_gate_events_follow_their_operands(self, qccd16):
        circuit = Circuit(16).cx(0, 15).cx(0, 15)
        program = QccdCompiler(qccd16).compile(circuit)
        # After the first transport both operands share a trap, so the second
        # CX needs no further shuttling.
        assert program.num_shuttles == 1

    def test_every_two_qubit_event_is_intra_trap(self, qccd16):
        program = compile_for_qccd(qft_workload(16), qccd16)
        # Replay the trap occupancy and confirm each gate event's operands
        # shared a trap at execution time (the compiler guarantees it by
        # construction; this re-checks the bookkeeping).
        assert all(isinstance(e, (QccdGateEvent, QccdShuttleEvent))
                   for e in program.events)
        assert program.num_shuttles > 0

    def test_capacity_pressure_forces_multiple_transports(self):
        device = QccdDevice(num_qubits=8, trap_capacity=5, num_traps=2)
        circuit = Circuit(8)
        # Repeatedly interact qubits that start in different traps so the
        # compiler has to keep transporting ions as traps fill up.
        circuit.cx(0, 7).cx(1, 6).cx(2, 5).cx(3, 4)
        program = QccdCompiler(device).compile(circuit)
        assert program.num_shuttles >= 2
        # The bookkeeping must never overfill a trap.
        occupancy = [len(chain) for chain in device.initial_layout()]
        for event in program.shuttle_events:
            occupancy[event.source_trap] -= 1
            occupancy[event.dest_trap] += 1
            assert max(occupancy) <= device.trap_capacity

    def test_completely_full_device_rejected(self):
        device = QccdDevice(num_qubits=8, trap_capacity=4, num_traps=2)
        compiler = QccdCompiler(device)
        # Artificially full traps cannot host any transport.
        with pytest.raises(CompilationError):
            compiler._nearest_trap_with_space(0, [[0, 1, 2, 3], [4, 5, 6, 7]])

    def test_too_wide_circuit_rejected(self, qccd16):
        with pytest.raises(CompilationError):
            QccdCompiler(qccd16).compile(Circuit(17))

    def test_summary(self, qccd16):
        program = compile_for_qccd(qaoa_workload(16, rounds=1), qccd16)
        assert "transports" in program.summary()


class TestQccdSimulator:
    def test_noiseless_run_has_unit_success(self, qccd16):
        program = compile_for_qccd(qaoa_workload(16, rounds=1), qccd16)
        result = QccdSimulator(qccd16, NoiseParameters.noiseless()).run(program)
        assert result.success_rate == pytest.approx(1.0)

    def test_shuttling_heats_and_hurts(self, qccd16, noise):
        local = Circuit(16)
        for _ in range(10):
            local.cx(0, 1)
        crossing = Circuit(16)
        for _ in range(10):
            crossing.cx(0, 15)
        simulator = QccdSimulator(qccd16, noise)
        local_result = simulator.run(compile_for_qccd(local, qccd16))
        crossing_result = simulator.run(compile_for_qccd(crossing, qccd16))
        assert crossing_result.success_rate < local_result.success_rate
        assert crossing_result.num_moves > 0

    def test_cooling_factor_bounds_degradation(self, qccd16):
        circuit = qft_workload(16)
        program = compile_for_qccd(circuit, qccd16)
        cooled = QccdSimulator(
            qccd16, NoiseParameters(qccd_cooling_factor=0.5)
        ).run(program)
        uncooled = QccdSimulator(
            qccd16, NoiseParameters(qccd_cooling_factor=1.0)
        ).run(program)
        assert cooled.log10_success_rate >= uncooled.log10_success_rate

    def test_result_metadata(self, qccd16, noise):
        program = compile_for_qccd(qaoa_workload(16, rounds=1), qccd16)
        result = QccdSimulator(qccd16, noise).run(program, circuit_name="qaoa")
        assert result.architecture == "QCCD"
        assert result.circuit_name == "qaoa"
        assert result.execution_time_us > 0
        assert any(key.startswith("trap_") for key in result.extras)

    def test_heating_telemetry_survives_cooling_events(self, qccd16, noise):
        # regression companion of ChainHeatingState.cooled(): every
        # transport triggers a sympathetic-cooling event, yet the QCCD
        # result must still report how many heating primitives each trap
        # absorbed — cooling resets energy, not history
        crossing = Circuit(16)
        for _ in range(4):
            crossing.cx(0, 15)
        result = QccdSimulator(qccd16, noise).run(
            compile_for_qccd(crossing, qccd16)
        )
        assert result.num_moves > 0
        op_counters = {key: value for key, value in result.extras.items()
                       if key.endswith("_qccd_ops")}
        assert op_counters
        assert sum(op_counters.values()) > 0

    def test_device_mismatch_rejected(self, qccd16, noise):
        other = QccdDevice(num_qubits=12, trap_capacity=5)
        program = compile_for_qccd(Circuit(12).cx(0, 11), other)
        with pytest.raises(Exception):
            QccdSimulator(qccd16, noise).run(program)
