"""Tests for the durable RunStore / RunManifest and search resume."""

import json
import os

import pytest

from repro.arch.tilt import TiltDevice
from repro.compiler.pipeline import CompilerConfig
from repro.exceptions import ReproError
from repro.exec import (
    ExecutionEngine,
    JobSpec,
    RunManifest,
    RunStore,
    collect_provenance,
    read_manifest,
    spec_key,
)
from repro.exec.engine import reset_default_engine
from repro.noise.parameters import NoiseParameters
from repro.search import GridStrategy, SearchSpace, config_knob, run_search
from repro.workloads.bv import bv_workload
from repro.workloads.qft import qft_workload


@pytest.fixture(autouse=True)
def _fresh_default_engine():
    reset_default_engine()
    yield
    reset_default_engine()


def _spec(length: int = 7, label: str = "") -> JobSpec:
    return JobSpec(
        circuit=bv_workload(16),
        device=TiltDevice(num_qubits=16, head_size=8),
        config=CompilerConfig(max_swap_len=length, mapper="trivial"),
        noise=NoiseParameters.paper_defaults(),
        label=label,
    )


def _space(lengths) -> SearchSpace:
    return SearchSpace(
        circuit=qft_workload(16),
        device=TiltDevice(num_qubits=16, head_size=8),
        knobs=[config_knob("max_swap_len", list(lengths))],
    )


class TestRunStore:
    def test_round_trip_across_instances(self, tmp_path):
        root = tmp_path / "run"
        result = ExecutionEngine(workers=1).run_one(_spec(7))
        store = RunStore(root)
        store.store(result)
        fresh = RunStore(root)
        assert len(fresh) == 1
        assert fresh.get(result.key).simulation == result.simulation

    def test_concurrent_writers_merge(self, tmp_path):
        root = tmp_path / "run"
        engine = ExecutionEngine(workers=1)
        first = engine.run_one(_spec(7))
        second = engine.run_one(_spec(6))
        writer_a, writer_b = RunStore(root), RunStore(root)
        writer_a.store(first)
        writer_b.store(second)  # b never saw a's entry; separate segment
        assert writer_a.segment_path != writer_b.segment_path
        merged = RunStore(root)
        assert set(merged.keys()) == {first.key, second.key}
        # an existing store picks up the other writer's entries on reload
        assert first.key not in writer_b
        writer_b.reload()
        assert first.key in writer_b

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        root = tmp_path / "run"
        store = RunStore(root)
        result = ExecutionEngine(workers=1).run_one(_spec(7))
        store.store(result)
        with open(store.segment_path, "a", encoding="utf-8") as handle:
            handle.write('{"version": 1, "record": {"key": "half')  # no \n
        fresh = RunStore(root)
        assert fresh.keys() == [result.key]

    def test_duplicate_store_is_not_reappended(self, tmp_path):
        root = tmp_path / "run"
        store = RunStore(root)
        result = ExecutionEngine(workers=1).run_one(_spec(7))
        store.store(result)
        store.store(result)
        with open(store.segment_path, "r", encoding="utf-8") as handle:
            assert len(handle.readlines()) == 1

    def test_engine_resumes_from_store(self, tmp_path):
        root = tmp_path / "run"
        specs = [_spec(7), _spec(6), _spec(5)]
        cold = ExecutionEngine(workers=1, store=root)
        cold.run(specs)
        assert cold.stats.jobs_executed == 3
        warm = ExecutionEngine(workers=1, store=root)
        results = warm.run(specs)
        assert warm.stats.cache_hits == 3
        assert warm.stats.jobs_executed == 0
        assert all(result.cache_hit for result in results)

    def test_store_and_cache_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ReproError):
            ExecutionEngine(store=tmp_path / "run",
                            cache_path=tmp_path / "cache.json")

    def test_interrupted_run_keeps_finished_jobs(self, tmp_path):
        """Serial execution streams: jobs finished before a crash are
        durable, and a fresh engine on the store skips exactly them."""
        root = tmp_path / "run"
        specs = [_spec(7), _spec(6), _spec(5)]

        def explode(done, total, result):
            if done == 2:
                raise KeyboardInterrupt("simulated crash mid-batch")

        dying = ExecutionEngine(workers=1, store=root, progress=explode)
        with pytest.raises(KeyboardInterrupt):
            dying.run(specs)
        survivor = RunStore(root)
        assert len(survivor) == 2  # the two jobs that finished

        resumed = ExecutionEngine(workers=1, store=root)
        resumed.run(specs)
        assert resumed.stats.cache_hits == 2
        assert resumed.stats.jobs_executed == 1

    def test_pooled_run_streams_results_into_the_store(self, tmp_path):
        """The process backend yields chunk results as they complete, so
        a pooled run killed mid-batch keeps what already finished."""
        root = tmp_path / "run"
        specs = [_spec(length) for length in (7, 6, 5, 4)]

        def explode(done, total, result):
            if done == 1:
                raise KeyboardInterrupt("simulated kill after first result")

        dying = ExecutionEngine(workers=2, backend="process", store=root,
                                progress=explode)
        with pytest.raises(KeyboardInterrupt):
            dying.run(specs)
        assert len(RunStore(root)) >= 1  # streamed before the kill


class TestRunManifest:
    def test_round_trip(self, tmp_path):
        root = tmp_path / "run"
        store = RunStore(root)
        manifest = RunManifest(
            store_root=store.root,
            spec_keys=["a", "b", "c"],
            completed_keys=["a"],
            backend="serial",
            engine_stats={"jobs_executed": 1.0},
            provenance=collect_provenance(seed=3, shots=128),
            status="running",
            extra={"strategy": "grid"},
        )
        store.write_manifest(manifest)
        loaded = read_manifest(root)  # by store root
        assert loaded == manifest
        assert loaded.pending_keys == ["b", "c"]
        by_path = read_manifest(store.manifest_path())  # by file path
        assert by_path == manifest

    def test_provenance_fields(self):
        provenance = collect_provenance(seed=9, shots=64)
        assert provenance["seed"] == 9
        assert provenance["shots"] == 64
        assert "python" in provenance and "platform" in provenance
        assert "git_commit" in provenance  # may be None outside a repo

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(ReproError):
            read_manifest(tmp_path)

    def test_failed_manifest_write_leaves_no_temp_file(self, tmp_path):
        store = RunStore(tmp_path / "run")
        bad = RunManifest(store_root=store.root,
                          extra={"unserialisable": object()})
        with pytest.raises(TypeError):
            store.write_manifest(bad)
        assert not os.path.exists(store.manifest_path())
        assert not os.path.exists(store.manifest_path() + ".tmp")


class TestSearchResume:
    def test_durable_search_writes_manifest(self, tmp_path):
        root = tmp_path / "run"
        space = _space([7, 6])
        result = run_search(space, GridStrategy(), store=str(root))
        manifest = result.manifest
        assert manifest is not None
        assert manifest.status == "complete"
        assert len(manifest.spec_keys) == 2
        assert sorted(manifest.completed_keys) == sorted(manifest.spec_keys)
        assert manifest.pending_keys == []
        assert manifest.backend == "serial"
        assert read_manifest(root).status == "complete"

    def test_resume_skips_exactly_the_completed_jobs(self, tmp_path):
        root = tmp_path / "run"
        # first run covers half the lattice (an "interrupted" full run)
        partial = run_search(_space([7, 6]), GridStrategy(), store=str(root))
        assert partial.engine_stats["jobs_executed"] == 2

        full_space = _space([7, 6, 5, 4])
        resumed = run_search(full_space, GridStrategy(), resume=str(root))
        # engine stats prove the skip: only the two new points executed
        assert resumed.engine_stats["cache_hits"] == 2
        assert resumed.engine_stats["jobs_executed"] == 2
        assert len(resumed.points) == 4
        assert resumed.manifest.status == "complete"

        # resuming the already-complete run re-executes nothing at all
        again = run_search(full_space, GridStrategy(),
                           resume=resumed.manifest)
        assert again.engine_stats["jobs_executed"] == 0
        assert again.engine_stats["cache_hits"] == 4
        assert again.points == resumed.points

    def test_resume_matches_uninterrupted_run(self, tmp_path):
        space = _space([7, 6, 5])
        straight = run_search(space, GridStrategy(),
                              engine=ExecutionEngine(workers=1))
        resumed = run_search(space, GridStrategy(),
                             store=str(tmp_path / "cold"))
        assert resumed.points == straight.points

    def test_resume_follows_the_given_path_not_the_recorded_root(
            self, tmp_path):
        """A moved/downloaded store resumes from where it *is* now; the
        stale absolute root recorded in its manifest must not win."""
        import shutil

        original = tmp_path / "original"
        space = _space([7, 6])
        run_search(space, GridStrategy(), store=str(original))
        moved = tmp_path / "moved"
        shutil.move(str(original), str(moved))

        resumed = run_search(space, GridStrategy(), resume=str(moved))
        assert resumed.engine_stats["jobs_executed"] == 0
        assert resumed.engine_stats["cache_hits"] == 2
        assert not original.exists()  # stale path was not recreated
        assert resumed.manifest.store_root == str(moved)

    def test_store_and_engine_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ReproError):
            run_search(_space([7]), GridStrategy(),
                       engine=ExecutionEngine(workers=1),
                       store=str(tmp_path / "run"))

    def test_interrupted_search_leaves_resumable_manifest(self, tmp_path):
        """A search killed mid-round leaves status='running' and a store
        holding its finished jobs; resume completes only the rest."""
        root = tmp_path / "run"
        space = _space([7, 6, 5, 4])

        class Dying(GridStrategy):
            def run(self, sp, evaluate):
                candidates = list(sp.candidates())
                evaluate(candidates[:2], sp.shots)  # round 1 lands
                raise KeyboardInterrupt("simulated crash between rounds")

        with pytest.raises(KeyboardInterrupt):
            run_search(space, Dying(), store=str(root))
        manifest = read_manifest(root)
        assert manifest.status == "running"
        assert len(manifest.completed_keys) == 2

        resumed = run_search(space, GridStrategy(), resume=manifest)
        assert resumed.engine_stats["cache_hits"] == 2
        assert resumed.engine_stats["jobs_executed"] == 2
        assert resumed.manifest.status == "complete"
