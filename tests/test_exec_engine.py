"""Tests for the repro.exec batch execution engine."""

import dataclasses

import pytest

from repro.arch.ideal import IdealTrappedIonDevice
from repro.arch.qccd import QccdDevice
from repro.arch.tilt import TiltDevice
from repro.compiler.pipeline import CompilerConfig, LinQCompiler
from repro.core.comparison import compare_architectures
from repro.core.sweep import max_swap_len_sweep, mapper_sweep
from repro.exceptions import ReproError
from repro.exec import (
    ExecutionEngine,
    JobSpec,
    ResultCache,
    run_jobs,
    spec_key,
)
from repro.exec.engine import reset_default_engine, resolve_workers
from repro.noise.parameters import NoiseParameters
from repro.sim.tilt_sim import TiltSimulator
from repro.workloads.bv import bv_workload
from repro.workloads.qft import qft_workload


@pytest.fixture(autouse=True)
def _fresh_default_engine():
    """Keep the process-wide engine out of these tests."""
    reset_default_engine()
    yield
    reset_default_engine()


def _tilt_spec(length: int = 7, *, simulate: bool = True,
               label: str = "") -> JobSpec:
    return JobSpec(
        circuit=bv_workload(16),
        device=TiltDevice(num_qubits=16, head_size=8),
        config=CompilerConfig(max_swap_len=length, mapper="trivial"),
        noise=NoiseParameters.paper_defaults(),
        simulate=simulate,
        label=label,
    )


class TestSpecKey:
    def test_equal_specs_share_a_key(self):
        assert spec_key(_tilt_spec(7)) == spec_key(_tilt_spec(7))

    def test_label_is_not_hashed(self):
        assert spec_key(_tilt_spec(7, label="a")) == spec_key(
            _tilt_spec(7, label="b")
        )

    def test_config_changes_the_key(self):
        assert spec_key(_tilt_spec(7)) != spec_key(_tilt_spec(5))

    def test_circuit_changes_the_key(self):
        base = _tilt_spec(7)
        other = dataclasses.replace(base, circuit=qft_workload(16))
        assert spec_key(base) != spec_key(other)

    def test_simulate_flag_changes_the_key(self):
        assert spec_key(_tilt_spec(7)) != spec_key(
            _tilt_spec(7, simulate=False)
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError):
            JobSpec(circuit=bv_workload(4),
                    device=TiltDevice(num_qubits=4, head_size=2),
                    backend="magic")


class TestExecutionEngine:
    def test_serial_run_matches_direct_toolflow(self, noise):
        spec = _tilt_spec(7)
        result = ExecutionEngine(workers=1).run_one(spec)
        compiled = LinQCompiler(spec.device, spec.config).compile(spec.circuit)
        direct = TiltSimulator(spec.device, noise).run(compiled)

        def structural(stats):
            # wall-clock compile timings legitimately differ run to run
            return dataclasses.replace(
                stats, time_decompose_s=0, time_swap_s=0, time_schedule_s=0,
            )

        assert structural(result.stats) == structural(compiled.stats)
        assert result.simulation == direct

    def test_repeated_batch_is_served_from_cache(self):
        engine = ExecutionEngine(workers=1)
        specs = [_tilt_spec(length) for length in (7, 6, 5)]
        first = engine.run(specs)
        assert engine.stats.cache_hits == 0
        assert engine.stats.jobs_executed == 3
        second = engine.run(specs)
        assert engine.stats.cache_hits == 3
        assert engine.stats.jobs_executed == 3  # nothing new ran
        assert all(result.cache_hit for result in second)
        assert [r.simulation for r in second] == [r.simulation for r in first]

    def test_duplicates_in_one_batch_execute_once(self):
        engine = ExecutionEngine(workers=1)
        results = engine.run([_tilt_spec(7), _tilt_spec(7), _tilt_spec(7)])
        assert engine.stats.jobs_executed == 1
        assert engine.stats.deduplicated == 2
        assert results[0].simulation == results[1].simulation
        assert not results[0].cache_hit and results[1].cache_hit

    def test_labels_survive_dedup_and_cache(self):
        engine = ExecutionEngine(workers=1)
        a, b = engine.run([_tilt_spec(7, label="a"), _tilt_spec(7, label="b")])
        assert (a.label, b.label) == ("a", "b")
        (c,) = engine.run([_tilt_spec(7, label="c")])
        assert c.label == "c" and c.cache_hit

    def test_pooled_run_matches_serial(self):
        specs = [_tilt_spec(length) for length in (7, 6, 5, 4)]
        serial = ExecutionEngine(workers=1).run(specs)
        pooled = ExecutionEngine(workers=2).run(specs)
        assert [r.stats.num_swaps for r in pooled] == [
            r.stats.num_swaps for r in serial
        ]
        assert [r.simulation for r in pooled] == [r.simulation for r in serial]

    def test_disk_cache_survives_engines(self, tmp_path):
        path = tmp_path / "cache.json"
        spec = _tilt_spec(7)
        first = ExecutionEngine(workers=1, cache_path=path).run_one(spec)
        assert path.exists()
        warm_engine = ExecutionEngine(workers=1, cache_path=path)
        second = warm_engine.run_one(spec)
        assert warm_engine.stats.cache_hits == 1
        assert warm_engine.stats.jobs_executed == 0
        assert second.cache_hit
        assert second.simulation == first.simulation
        assert second.stats == first.stats

    def test_clear_invalidates_disk_despite_merge_on_flush(self, tmp_path):
        path = tmp_path / "cache.json"
        engine = ExecutionEngine(workers=1, cache_path=path)
        engine.run_one(_tilt_spec(7))
        assert path.exists()
        engine.cache.clear()
        assert not path.exists()  # an invalidation wins over the merge
        engine.cache.flush()
        fresh = ExecutionEngine(workers=1, cache_path=path)
        fresh.run_one(_tilt_spec(7))
        assert fresh.stats.cache_hits == 0  # nothing was resurrected

    def test_concurrent_flush_merges_instead_of_clobbering(self, tmp_path):
        # regression: two processes flushing the same cache_path raced
        # last-writer-wins — whichever flushed second clobbered the other
        # side's entries.  Two engines whose caches never saw each other
        # model the two processes; after both flush, the file must hold
        # both results.
        path = tmp_path / "cache.json"
        engine_a = ExecutionEngine(workers=1, cache_path=path)
        engine_b = ExecutionEngine(workers=1, cache_path=path)  # loads empty
        engine_a.run_one(_tilt_spec(7))  # flushes {7}
        engine_b.run_one(_tilt_spec(6))  # flushes; used to drop {7}
        fresh = ExecutionEngine(workers=1, cache_path=path)
        fresh.run([_tilt_spec(7), _tilt_spec(6)])
        assert fresh.stats.cache_hits == 2
        assert fresh.stats.jobs_executed == 0

    def test_corrupt_disk_cache_is_ignored(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        engine = ExecutionEngine(workers=1, cache_path=path)
        assert engine.run_one(_tilt_spec(7)).simulation is not None

    def test_flush_failure_leaves_no_temp_file(self, tmp_path):
        # regression: a non-OSError from json.dump (e.g. TypeError on an
        # unserialisable payload) used to leak the mkstemp temp file
        from repro.exec import ResultCache
        from repro.exec.jobs import JobResult

        path = tmp_path / "cache.json"
        cache = ResultCache(path)
        good = ExecutionEngine(workers=1).run_one(_tilt_spec(7))
        poisoned = dataclasses.replace(
            good,
            simulation=dataclasses.replace(
                good.simulation, extras={"bad": object()}
            ),
        )
        cache.store(poisoned)
        with pytest.raises(TypeError):
            cache.flush()
        assert not path.exists()
        # only the advisory flush lock file may remain (it persists by
        # design: unlinking a lock file another process may hold races)
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert leftovers in ([], ["cache.json.lock"])
        # the cache object stays usable: replacing the poisoned entry
        # with a serialisable one lets the next flush succeed
        cache.store(good)
        cache.flush()
        assert path.exists()
        assert not list(tmp_path.glob("*.tmp"))

    def test_progress_callback_sees_every_job(self):
        seen = []
        engine = ExecutionEngine(
            workers=1, progress=lambda done, total, result: seen.append(
                (done, total)
            )
        )
        engine.run([_tilt_spec(7), _tilt_spec(6)])
        assert seen == [(1, 2), (2, 2)]
        # cache-served jobs also report progress
        engine.run([_tilt_spec(7), _tilt_spec(6)])
        assert seen == [(1, 2), (2, 2), (1, 2), (2, 2)]

    def test_compile_only_job_has_no_simulation(self):
        result = ExecutionEngine(workers=1).run_one(
            _tilt_spec(7, simulate=False)
        )
        assert result.stats is not None
        assert result.simulation is None

    def test_ideal_backend(self):
        spec = JobSpec(circuit=bv_workload(8),
                       device=IdealTrappedIonDevice(num_qubits=8),
                       backend="ideal")
        result = ExecutionEngine(workers=1).run_one(spec)
        assert result.stats is None
        assert result.simulation.architecture == "Ideal TI"

    def test_qccd_backend(self):
        spec = JobSpec(circuit=qft_workload(12),
                       device=QccdDevice(num_qubits=12, trap_capacity=5),
                       backend="qccd")
        result = ExecutionEngine(workers=1).run_one(spec)
        assert result.stats is None
        assert result.simulation.num_moves > 0

    def test_stats_reset_zeroes_counters_but_keeps_cache(self):
        engine = ExecutionEngine(workers=1)
        engine.run([_tilt_spec(7), _tilt_spec(6)])
        assert engine.stats.jobs_executed == 2
        engine.stats.reset()
        assert engine.stats.jobs_submitted == 0
        assert engine.stats.jobs_executed == 0
        assert engine.stats.cache_hits == 0
        assert engine.stats.deduplicated == 0
        assert engine.stats.execution_time_s == 0.0
        assert engine.stats.job_times_s == []
        # per-phase accounting: the warm phase reports only its own hits
        engine.run([_tilt_spec(7), _tilt_spec(6)])
        assert engine.stats.cache_hits == 2
        assert engine.stats.jobs_executed == 0

    def test_resolve_workers(self, monkeypatch):
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1  # one per CPU
        monkeypatch.setenv("TILT_REPRO_WORKERS", "2")
        assert resolve_workers(None) == 2
        monkeypatch.delenv("TILT_REPRO_WORKERS")
        assert resolve_workers(None) == 1
        monkeypatch.setenv("TILT_REPRO_WORKERS", "nope")
        with pytest.raises(ReproError):
            resolve_workers(None)
        with pytest.raises(ReproError):
            resolve_workers(-2)


class TestEngineRoutedDrivers:
    def test_sweep_identical_serial_and_pooled(self, tilt16):
        circuit = bv_workload(16)
        serial = max_swap_len_sweep(
            circuit, tilt16, [7, 5, 4],
            engine=ExecutionEngine(workers=1),
        )
        pooled = max_swap_len_sweep(
            circuit, tilt16, [7, 5, 4],
            engine=ExecutionEngine(workers=4),
        )
        assert pooled == serial

    def test_sweep_hits_cache_on_reinvocation(self, tilt16):
        engine = ExecutionEngine(workers=1)
        circuit = bv_workload(16)
        first = max_swap_len_sweep(circuit, tilt16, [7, 5], engine=engine)
        second = max_swap_len_sweep(circuit, tilt16, [7, 5], engine=engine)
        assert second == first
        assert engine.stats.cache_hits == 2

    def test_run_jobs_uses_shared_engine_cache(self, tilt16):
        circuit = bv_workload(16)
        first = max_swap_len_sweep(circuit, tilt16, [7])
        second = max_swap_len_sweep(circuit, tilt16, [7])
        assert second == first
        from repro.exec import default_engine

        assert default_engine().stats.cache_hits >= 1

    def test_run_jobs_workers_override_is_temporary(self):
        engine = ExecutionEngine(workers=1)
        run_jobs([_tilt_spec(7)], workers=2, engine=engine)
        assert engine.workers == 1

    def test_comparison_through_engine(self):
        comparison = compare_architectures(
            qft_workload(12), head_sizes=(4, 6), qccd_trap_capacities=(5,),
            engine=ExecutionEngine(workers=1),
        )
        assert set(comparison.architectures()) == {
            "TILT head 4", "TILT head 6", "Ideal TI", "QCCD",
        }

    def test_mapper_sweep_points_carry_labels(self, tilt16):
        points = mapper_sweep(bv_workload(16), tilt16,
                              engine=ExecutionEngine(workers=1))
        for mapper, point in points.items():
            assert point.label == mapper
            assert point.parameter == "mapper"
