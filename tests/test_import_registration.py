"""Import-time scenario registration, pinned from a fresh interpreter.

The ROADMAP invariant behind lint rule RPR004: scenario names must be
registered **at import time** so process-pool (and future remote)
workers — which see the library only by re-importing it — can resolve
``JobSpec(scenario=...)``.  In-process tests cannot pin this (the test
session has already imported and registered everything), so these tests
spawn a pristine interpreter and check what a worker would actually
see.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).parent.parent
SRC = REPO_ROOT / "src"

#: Every scenario shipped by repro.noise.scenarios.
BUILTIN_SCENARIOS = frozenset(
    {"baseline", "crosstalk", "leakage", "heating_burst", "worst_case"}
)


def fresh_interpreter(code: str) -> str:
    """Run *code* in a new python with only ``src`` on the path."""
    completed = subprocess.run(
        (sys.executable, "-c", code),
        capture_output=True, text=True, timeout=120,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_import_repro_registers_every_builtin_scenario():
    stdout = fresh_interpreter(
        "import json, repro\n"
        "from repro.noise import scenario_names\n"
        "print(json.dumps(sorted(scenario_names())))\n"
    )
    assert BUILTIN_SCENARIOS <= set(json.loads(stdout))


def test_pool_worker_import_path_sees_scenarios():
    """Importing just the job layer (what unpickling a JobSpec pulls in)
    must already resolve every built-in scenario name."""
    stdout = fresh_interpreter(
        "import json\n"
        "import repro.exec.jobs\n"
        "from repro.noise.scenarios import get_scenario, scenario_names\n"
        "names = sorted(scenario_names())\n"
        "resolved = [get_scenario(name).name for name in names]\n"
        "print(json.dumps(resolved))\n"
    )
    assert BUILTIN_SCENARIOS <= set(json.loads(stdout))


def test_builtin_scenario_set_matches_lint_corpus_expectation():
    """The frozen name set above is the one the registry actually ships
    (catches a built-in added without updating this pin)."""
    stdout = fresh_interpreter(
        "import json, repro\n"
        "from repro.noise import scenario_names\n"
        "print(json.dumps(sorted(scenario_names())))\n"
    )
    assert set(json.loads(stdout)) == BUILTIN_SCENARIOS
