"""Tests for the experiment drivers and report generation (small scale)."""

import pytest

from repro.analysis import experiments
from repro.analysis.report import (
    figure6_report,
    figure8_report,
    table2_report,
    table3_report,
)
from repro.analysis.tables import format_records, format_table
from repro.exceptions import ReproError


class TestScaleResolution:
    def test_default_is_small(self, monkeypatch):
        monkeypatch.delenv(experiments.SCALE_ENV_VAR, raising=False)
        assert experiments.resolve_scale() == "small"

    def test_env_var_override(self, monkeypatch):
        monkeypatch.setenv(experiments.SCALE_ENV_VAR, "paper")
        assert experiments.resolve_scale() == "paper"
        assert experiments.resolve_scale("small") == "small"

    def test_invalid_scale_rejected(self):
        with pytest.raises(ReproError):
            experiments.resolve_scale("huge")

    def test_head_sizes(self):
        assert experiments.head_sizes_for("paper", 64) == (16, 32)
        small = experiments.head_sizes_for("small", 16)
        assert small[0] < small[1] <= 16
        assert experiments.primary_head_size("paper", 64) == 16


class TestTable2:
    def test_rows_cover_all_benchmarks(self):
        rows = experiments.table2("small")
        assert [row["application"] for row in rows] == [
            "ADDER", "BV", "QAOA", "RCS", "QFT", "SQRT",
        ]

    def test_report_text(self):
        text = table2_report("small")
        assert "Table II" in text and "QFT" in text


class TestFigure6:
    def test_rows_and_shape(self):
        rows = experiments.figure6("small")
        assert len(rows) == 6  # 3 workloads x 2 routers
        by_key = {(row.workload, row.router): row for row in rows}
        for workload in ("QFT", "SQRT"):
            linq = by_key[(workload, "linq")]
            baseline = by_key[(workload, "baseline")]
            # The headline Figure 6 findings: fewer swaps, more opposing
            # swaps, fewer moves, better success for the LinQ router.
            assert linq.num_swaps <= baseline.num_swaps
            assert linq.opposing_swap_ratio >= baseline.opposing_swap_ratio
            assert linq.log10_success_rate >= baseline.log10_success_rate

    def test_report_text(self):
        assert "Figure 6" in figure6_report("small")


class TestFigure7:
    def test_sweep_rows(self):
        rows = experiments.figure7("small", workloads=("BV",))
        assert all(row.workload == "BV" for row in rows)
        lengths = [row.max_swap_len for row in rows]
        assert lengths == sorted(lengths, reverse=True)

    def test_best_max_swap_len(self):
        rows = experiments.figure7("small", workloads=("QFT",))
        best = experiments.best_max_swap_len(rows, "QFT")
        assert best.log10_success_rate == max(r.log10_success_rate for r in rows)
        with pytest.raises(ReproError):
            experiments.best_max_swap_len(rows, "BV")


class TestFigure8AndTable3:
    def test_figure8_architectures(self):
        comparisons = experiments.figure8("small", workloads=("QAOA", "BV"))
        assert len(comparisons) == 2
        for comparison in comparisons:
            assert "Ideal TI" in comparison.results
            assert "QCCD" in comparison.results
        ratios = experiments.headline_ratios(comparisons)
        assert "max" in ratios

    def test_figure8_report_text(self):
        text = figure8_report("small")
        assert "Figure 8" in text and "Headline" in text

    def test_table3_rows(self):
        rows = experiments.table3("small")
        assert len(rows) == 12  # 6 workloads x 2 head sizes
        for row in rows:
            assert row.num_moves >= 0
            assert row.execution_time_s > 0

    def test_table3_report_text(self):
        assert "Table III" in table3_report("small")


class TestAblations:
    def test_mapper_ablation(self):
        results = experiments.ablation_mapper("small", workload="BV")
        assert set(results) == {"trivial", "spectral", "greedy"}

    def test_lookahead_ablation(self):
        points = experiments.ablation_lookahead("small", workload="BV")
        assert len(points) >= 2


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", 1e-9]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_records_empty(self):
        assert format_records([]) == "(no rows)"

    def test_format_records_column_selection(self):
        text = format_records([{"a": 1, "b": 2}], columns=["b"])
        assert "b" in text and "a" not in text.splitlines()[0]
