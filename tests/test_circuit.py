"""Unit tests for the Circuit container."""

import math

import pytest

from repro.circuits.circuit import Circuit, circuit_from_gates
from repro.circuits.gate import Gate
from repro.exceptions import CircuitError


class TestBuilding:
    def test_empty_circuit(self):
        circuit = Circuit(3)
        assert circuit.num_qubits == 3
        assert len(circuit) == 0

    def test_invalid_width(self):
        with pytest.raises(CircuitError):
            Circuit(0)

    def test_builder_methods_chain(self):
        circuit = Circuit(2).h(0).cx(0, 1).rz(0.5, 1).measure_all()
        assert [g.name for g in circuit] == ["h", "cx", "rz", "measure", "measure"]

    def test_append_validates_register(self):
        circuit = Circuit(2)
        with pytest.raises(CircuitError):
            circuit.append(Gate("x", (2,)))

    def test_extend_and_from_gates(self):
        gates = [Gate("h", (0,)), Gate("cx", (0, 1))]
        circuit = circuit_from_gates(2, gates)
        assert circuit.gates == tuple(gates)

    def test_barrier_defaults_to_full_width(self):
        circuit = Circuit(3).barrier()
        assert circuit[0].qubits == (0, 1, 2)

    def test_indexing_and_iteration(self):
        circuit = Circuit(2).h(0).x(1)
        assert circuit[1].name == "x"
        assert [g.name for g in circuit] == ["h", "x"]

    def test_equality(self):
        a = Circuit(2).h(0)
        b = Circuit(2).h(0)
        c = Circuit(2).h(1)
        assert a == b
        assert a != c


class TestStatistics:
    def test_count_ops(self):
        circuit = Circuit(3).h(0).h(1).cx(0, 1).cx(1, 2)
        assert circuit.count_ops() == {"h": 2, "cx": 2}

    def test_two_qubit_counts_include_swaps(self):
        circuit = Circuit(3).cx(0, 1).swap(1, 2).h(0)
        assert circuit.num_two_qubit_gates() == 2
        assert len(circuit.two_qubit_gates()) == 2

    def test_num_gates_excludes_barriers(self):
        circuit = Circuit(2).h(0).barrier().x(1)
        assert circuit.num_gates() == 2
        assert circuit.num_gates(include_structural=True) == 3

    def test_depth_linear_chain(self):
        circuit = Circuit(1).h(0).x(0).z(0)
        assert circuit.depth() == 3

    def test_depth_parallel_gates(self):
        circuit = Circuit(4).h(0).h(1).h(2).h(3)
        assert circuit.depth() == 1

    def test_depth_two_qubit_only(self):
        circuit = Circuit(2).h(0).h(1).cx(0, 1).h(0)
        assert circuit.depth(two_qubit_only=True) == 1

    def test_depth_respects_barrier(self):
        circuit = Circuit(2).h(0).barrier(0, 1).h(1)
        assert circuit.depth() == 2

    def test_active_qubits(self):
        circuit = Circuit(5).h(1).cx(1, 3)
        assert circuit.active_qubits() == {1, 3}

    def test_interaction_counts_sorted_pairs(self):
        circuit = Circuit(3).cx(2, 0).cx(0, 2).cx(1, 2)
        counts = circuit.interaction_counts()
        assert counts[(0, 2)] == 2
        assert counts[(1, 2)] == 1

    def test_summary_mentions_name_and_counts(self):
        circuit = Circuit(2, name="demo").h(0).cx(0, 1)
        text = circuit.summary()
        assert "demo" in text and "2 qubits" in text


class TestTransformations:
    def test_copy_is_independent(self):
        circuit = Circuit(2).h(0)
        clone = circuit.copy()
        clone.x(1)
        assert len(circuit) == 1
        assert len(clone) == 2

    def test_compose_appends_gates(self):
        first = Circuit(2).h(0)
        second = Circuit(2).cx(0, 1)
        combined = first.compose(second)
        assert [g.name for g in combined] == ["h", "cx"]
        assert len(first) == 1

    def test_compose_rejects_wider_circuit(self):
        with pytest.raises(CircuitError):
            Circuit(2).compose(Circuit(3))

    def test_inverse_reverses_and_inverts(self):
        circuit = Circuit(2).h(0).rz(0.3, 1).cx(0, 1)
        inverse = circuit.inverse()
        assert [g.name for g in inverse] == ["cx", "rz", "h"]
        assert inverse[1].params == (-0.3,)

    def test_inverse_rejects_measurement(self):
        with pytest.raises(CircuitError):
            Circuit(1).measure(0).inverse()

    def test_remap_relabels_qubits(self):
        circuit = Circuit(2).cx(0, 1)
        remapped = circuit.remap([3, 1], num_qubits=4)
        assert remapped[0].qubits == (3, 1)
        assert remapped.num_qubits == 4

    def test_without_drops_named_gates(self):
        circuit = Circuit(2).h(0).barrier().cx(0, 1)
        cleaned = circuit.without(["barrier"])
        assert [g.name for g in cleaned] == ["h", "cx"]

    def test_identity_composed_with_inverse_has_zero_rotation(self):
        circuit = Circuit(1).rz(math.pi / 3, 0)
        roundtrip = circuit.compose(circuit.inverse())
        total = sum(g.params[0] for g in roundtrip)
        assert abs(total) < 1e-12
