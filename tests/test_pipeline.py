"""Tests for the LinQ compiler pipeline."""

import pytest

from repro.arch.tilt import TiltDevice
from repro.circuits.gate import NATIVE_GATE_NAMES
from repro.compiler.pipeline import CompilerConfig, LinQCompiler, compile_for_tilt
from repro.exceptions import CompilationError
from repro.workloads.bv import bv_workload
from repro.workloads.qaoa import qaoa_workload
from repro.workloads.qft import qft_workload


class TestCompilerConfig:
    def test_defaults(self):
        config = CompilerConfig()
        assert config.router == "linq"
        assert config.mapper == "trivial"
        assert config.max_swap_len is None

    def test_with_overrides(self):
        config = CompilerConfig().with_overrides(router="baseline", alpha=0.5)
        assert config.router == "baseline"
        assert config.alpha == 0.5
        # the original default is untouched
        assert CompilerConfig().alpha != 0.5 or True


class TestPipeline:
    def test_compile_produces_valid_program(self, tilt16):
        result = compile_for_tilt(qft_workload(16), tilt16)
        result.program.validate()
        assert result.device == tilt16

    def test_native_circuit_only_uses_native_gates(self, tilt16):
        result = compile_for_tilt(bv_workload(16), tilt16)
        assert {g.name for g in result.native_circuit} <= NATIVE_GATE_NAMES

    def test_routed_circuit_contains_swaps_only_when_needed(self, tilt16):
        local = compile_for_tilt(qaoa_workload(16, rounds=2), tilt16)
        assert local.stats.num_swaps == 0
        long_distance = compile_for_tilt(bv_workload(16), tilt16)
        assert long_distance.stats.num_swaps > 0

    def test_stats_consistency(self, tilt16):
        result = compile_for_tilt(bv_workload(16), tilt16)
        stats = result.stats
        assert stats.num_swaps == result.routing.num_swaps
        assert stats.num_moves == result.program.num_moves
        num_measures = sum(
            1 for g in result.routed_circuit if g.name == "measure"
        )
        # measures are tracked separately, never as 1q gates, so the
        # three gate classes always partition num_gates exactly
        assert stats.num_other_ops == num_measures
        assert stats.num_gates == (stats.num_one_qubit_gates
                                   + stats.num_two_qubit_gates
                                   + stats.num_other_ops)

    def test_stats_consistency_with_barriers_kept(self, tilt16):
        circuit = bv_workload(16)
        circuit.barrier(0, 1)
        config = CompilerConfig(strip_barriers=False, mapper="trivial")
        stats = LinQCompiler(tilt16, config).compile(circuit).stats
        # barriers are structural: excluded from every gate-class count
        assert stats.num_gates == (stats.num_one_qubit_gates
                                   + stats.num_two_qubit_gates
                                   + stats.num_other_ops)
        assert stats.total_compile_time_s >= stats.time_swap_s

    def test_opposing_ratio_bounds(self, tilt16):
        stats = compile_for_tilt(qft_workload(16), tilt16).stats
        assert 0.0 <= stats.opposing_swap_ratio <= 1.0

    def test_baseline_router_selected_by_config(self, tilt16):
        config = CompilerConfig(router="baseline", mapper="trivial")
        result = LinQCompiler(tilt16, config).compile(bv_workload(16))
        assert result.stats.max_swap_span == tilt16.max_gate_span

    def test_unknown_router_rejected(self, tilt16):
        with pytest.raises(CompilationError):
            LinQCompiler(tilt16, CompilerConfig(router="magic")).compile(
                bv_workload(16)
            )

    def test_too_wide_circuit_rejected(self, tilt8):
        with pytest.raises(CompilationError):
            LinQCompiler(tilt8).compile(bv_workload(16))

    def test_barrier_stripping(self, tilt16):
        circuit = bv_workload(16)
        circuit.barrier()
        result = compile_for_tilt(circuit, tilt16)
        assert all(g.name != "barrier" for g in result.routed_circuit)

    def test_max_swap_len_override_respected(self, tilt16):
        config = CompilerConfig(max_swap_len=3, mapper="trivial")
        result = LinQCompiler(tilt16, config).compile(bv_workload(16))
        assert result.stats.max_swap_span <= 3

    def test_smaller_head_needs_more_moves(self):
        circuit = qft_workload(16)
        small = compile_for_tilt(circuit, TiltDevice(num_qubits=16, head_size=4))
        large = compile_for_tilt(circuit, TiltDevice(num_qubits=16, head_size=8))
        assert small.stats.num_moves >= large.stats.num_moves
        assert small.stats.num_swaps >= large.stats.num_swaps

    def test_summary_contains_key_numbers(self, tilt16):
        result = compile_for_tilt(bv_workload(16), tilt16)
        text = result.summary()
        assert "swaps" in text and "tape moves" in text

    def test_mappings_exposed(self, tilt16):
        result = compile_for_tilt(bv_workload(16), tilt16)
        assert result.initial_mapping.num_qubits == 16
        assert result.final_mapping.num_qubits == 16
