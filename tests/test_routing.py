"""Tests for swap insertion: the LinQ router (Algorithm 1) and the baseline."""

import pytest

from tests.conftest import routed_state_matches_logical
from repro.arch.tilt import TiltDevice
from repro.circuits.circuit import Circuit
from repro.circuits.gate import Gate
from repro.compiler.decompose import decompose_to_native
from repro.compiler.layout import QubitMapping
from repro.compiler.routing import (
    RoutingResult,
    SwapRecord,
    check_routed,
    classify_opposing,
)
from repro.compiler.swap_baseline import BaselineSwapInserter
from repro.compiler.swap_linq import LinqSwapInserter
from repro.exceptions import RoutingError
from repro.sim.statevector import StatevectorSimulator
from repro.workloads.bv import bv_workload
from repro.workloads.qft import qft_workload


def long_distance_circuit(num_qubits: int = 12) -> Circuit:
    """A few deliberately long CX gates plus local structure."""
    circuit = Circuit(num_qubits)
    circuit.h(0)
    circuit.cx(0, num_qubits - 1)
    circuit.cx(1, num_qubits - 2)
    circuit.cx(0, 1)
    circuit.cx(num_qubits - 1, num_qubits // 2)
    return circuit


class TestRoutingResult:
    def test_swap_statistics(self):
        circuit = Circuit(4)
        result = RoutingResult(circuit, QubitMapping.identity(4),
                               QubitMapping.identity(4))
        assert result.num_swaps == 0
        assert result.opposing_swap_ratio == 0.0
        result.swaps.append(SwapRecord((0, 2), 0, 0, True))
        result.swaps.append(SwapRecord((1, 3), 1, 0, False))
        assert result.num_swaps == 2
        assert result.num_opposing_swaps == 1
        assert result.opposing_swap_ratio == 0.5
        assert result.max_swap_span() == 2

    def test_check_routed_raises_for_long_gate(self, tilt8):
        circuit = Circuit(8).cx(0, 7)
        with pytest.raises(RoutingError):
            check_routed(circuit, tilt8)


class TestOpposingClassification:
    def test_two_opposite_beneficiaries(self):
        # Gates (0, 7) and (6, 1): swapping positions 2 and 5 moves qubit 2's
        # data right (helping nothing) — use qubits 0 and 6 as the swap pair.
        mapping = QubitMapping.identity(8)
        pending = [(0, Gate("cx", (0, 7))), (1, Gate("cx", (6, 1)))]
        assert classify_opposing(2, 5, pending, mapping) is False
        # Swap positions of qubits 0..? place qubit 0 at 3, qubit 6 at ...:
        # swapping positions (3, 6): qubit 3 moves right (no pending gate),
        # qubit 6 moves left toward qubit 1 -> only one direction benefits.
        assert classify_opposing(3, 6, pending, mapping) is False
        # Swapping positions (0, 6): qubit 0 moves right toward 7 AND qubit 6
        # moves left toward 1 -> opposing.
        assert classify_opposing(0, 6, pending, mapping) is True

    def test_single_gate_is_not_opposing(self):
        mapping = QubitMapping.identity(8)
        pending = [(0, Gate("cx", (0, 7)))]
        assert classify_opposing(0, 3, pending, mapping) is False


class TestLinqRouter:
    def test_all_gates_become_executable(self, tilt16):
        router = LinqSwapInserter(tilt16)
        native = decompose_to_native(qft_workload(16))
        result = router.route(native)
        check_routed(result.circuit, tilt16)

    def test_no_swaps_for_local_circuit(self, tilt16):
        circuit = Circuit(16)
        for q in range(15):
            circuit.cx(q, q + 1)
        result = LinqSwapInserter(tilt16).route(circuit)
        assert result.num_swaps == 0
        assert result.circuit.gates == circuit.gates

    def test_swap_span_respects_max_swap_len(self, tilt16):
        router = LinqSwapInserter(tilt16, max_swap_len=4)
        result = router.route(decompose_to_native(bv_workload(16)))
        assert result.max_swap_span() <= 4

    def test_invalid_configuration(self, tilt16):
        with pytest.raises(RoutingError):
            LinqSwapInserter(tilt16, max_swap_len=0)
        with pytest.raises(RoutingError):
            LinqSwapInserter(tilt16, max_swap_len=8)
        with pytest.raises(RoutingError):
            LinqSwapInserter(tilt16, alpha=1.0)
        with pytest.raises(RoutingError):
            LinqSwapInserter(tilt16, lookahead_window=0)

    def test_too_wide_circuit_rejected(self, tilt8):
        with pytest.raises(RoutingError):
            LinqSwapInserter(tilt8).route(Circuit(9))

    def test_swap_records_reference_swap_gates(self, tilt8):
        result = LinqSwapInserter(tilt8).route(long_distance_circuit(8))
        for record in result.swaps:
            gate = result.circuit[record.gate_index]
            assert gate.name == "swap"
            assert tuple(sorted(gate.qubits)) == record.physical_pair

    def test_final_mapping_tracks_swaps(self, tilt8):
        result = LinqSwapInserter(tilt8).route(long_distance_circuit(8))
        mapping = result.initial_mapping.copy()
        for record in result.swaps:
            mapping.swap_physical(*record.physical_pair)
        assert mapping == result.final_mapping

    def test_semantics_preserved(self, tilt8, statevector):
        logical = long_distance_circuit(8)
        native = decompose_to_native(logical)
        result = LinqSwapInserter(tilt8).route(native)
        logical_state = statevector.run(logical)
        assert routed_state_matches_logical(
            result.circuit, result.final_mapping, logical_state, statevector
        )

    def test_semantics_preserved_with_nontrivial_initial_mapping(
            self, tilt8, statevector):
        logical = long_distance_circuit(8)
        native = decompose_to_native(logical)
        initial = QubitMapping([3, 5, 0, 1, 2, 4, 7, 6])
        result = LinqSwapInserter(tilt8).route(native, initial)
        logical_state = statevector.run(logical)
        assert routed_state_matches_logical(
            result.circuit, result.final_mapping, logical_state, statevector
        )


class TestBaselineRouter:
    def test_all_gates_become_executable(self, tilt16):
        result = BaselineSwapInserter(tilt16).route(
            decompose_to_native(bv_workload(16))
        )
        check_routed(result.circuit, tilt16)

    def test_deterministic_for_fixed_seed(self, tilt16):
        native = decompose_to_native(bv_workload(16))
        a = BaselineSwapInserter(tilt16, seed=3).route(native)
        b = BaselineSwapInserter(tilt16, seed=3).route(native)
        assert a.circuit.gates == b.circuit.gates

    def test_swaps_use_full_span(self, tilt16):
        result = BaselineSwapInserter(tilt16, trials=1).route(
            decompose_to_native(bv_workload(16))
        )
        assert result.num_swaps > 0
        assert result.max_swap_span() == tilt16.max_gate_span

    def test_semantics_preserved(self, tilt8, statevector):
        logical = long_distance_circuit(8)
        native = decompose_to_native(logical)
        result = BaselineSwapInserter(tilt8).route(native)
        logical_state = statevector.run(logical)
        assert routed_state_matches_logical(
            result.circuit, result.final_mapping, logical_state, statevector
        )

    def test_invalid_configuration(self, tilt16):
        with pytest.raises(RoutingError):
            BaselineSwapInserter(tilt16, trials=0)
        with pytest.raises(RoutingError):
            BaselineSwapInserter(tilt16, max_swap_len=99)

    def test_linq_beats_baseline_on_qft(self, tilt16):
        native = decompose_to_native(qft_workload(16))
        linq = LinqSwapInserter(tilt16).route(native)
        baseline = BaselineSwapInserter(tilt16).route(native)
        assert linq.num_swaps <= baseline.num_swaps
        assert linq.opposing_swap_ratio >= baseline.opposing_swap_ratio
