"""Tests for the batched statevector kernels.

:meth:`StatevectorSimulator.run_batch` and
:func:`batch_probabilities_with_insertions` must be *equivalent* to
stacking the serial kernel member by member — the stochastic sampler's
pattern-grouped counts re-simulation and the engine benchmarks both lean
on that equivalence.  Circuits here are randomized (seeded) so the
lockstep grouping sees shared gates, divergent gates and ragged lengths.
Equivalence is numerical (pinned to 1e-12): the batched contraction may
round differently from the serial one on dense states, so the sampler's
*bit*-identity guarantees never route through this kernel — they are
pinned in ``tests/test_stochastic.py`` against the serial reference.
"""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.gate import Gate
from repro.exceptions import SimulationError
from repro.sim.statevector import (
    BATCH_BLOCK,
    StatevectorSimulator,
    batch_probabilities_with_insertions,
)
from repro.workloads.qft import qft_workload


def _close(actual, expected):
    return np.allclose(actual, expected, rtol=0.0, atol=1e-12)


def _random_circuit(rng: np.random.Generator, num_qubits: int,
                    depth: int) -> Circuit:
    """A seeded random circuit over the serial kernel's gate vocabulary."""
    circuit = Circuit(num_qubits, name="random")
    single = ("h", "x", "y", "z", "s", "t", "sx")
    for _ in range(depth):
        choice = rng.random()
        if choice < 0.4:
            name = single[int(rng.integers(len(single)))]
            circuit.append(Gate(name, (int(rng.integers(num_qubits)),)))
        elif choice < 0.6:
            theta = float(rng.uniform(0, 2 * np.pi))
            circuit.append(Gate("rz", (int(rng.integers(num_qubits)),),
                                (theta,)))
        elif choice < 0.9:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.append(Gate("cx", (int(a), int(b))))
        else:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            theta = float(rng.uniform(0, np.pi))
            circuit.append(Gate("xx", (int(a), int(b)), (theta,)))
    return circuit


class TestRunBatch:
    def test_randomized_batch_matches_per_circuit_runs(self):
        rng = np.random.default_rng(20210817)
        simulator = StatevectorSimulator()
        circuits = [_random_circuit(rng, 5, int(rng.integers(10, 40)))
                    for _ in range(12)]
        batch = simulator.run_batch(circuits)
        assert batch.shape == (12, 2**5)
        for member, circuit in enumerate(circuits):
            assert _close(batch[member], simulator.run(circuit))

    def test_shared_prefix_circuits_group_batched(self):
        # the common case of the sampler: one base sequence, sparse
        # per-member divergence
        rng = np.random.default_rng(4)
        base = _random_circuit(rng, 4, 25)
        circuits = []
        for member in range(6):
            variant = Circuit(4, name=f"variant{member}")
            for index, gate in enumerate(base):
                variant.append(gate)
                if index == member * 3:
                    variant.append(Gate("x", (member % 4,)))
            circuits.append(variant)
        simulator = StatevectorSimulator()
        batch = simulator.run_batch(circuits)
        for member, circuit in enumerate(circuits):
            assert _close(batch[member], simulator.run(circuit))

    def test_ragged_lengths_stop_early(self):
        circuit = qft_workload(4)
        gates = [gate for gate in circuit
                 if gate.name not in ("barrier", "measure")]
        prefixes = []
        for length in (3, len(gates) // 2, len(gates)):
            prefix = Circuit(4, name=f"prefix{length}")
            for gate in gates[:length]:
                prefix.append(gate)
            prefixes.append(prefix)
        simulator = StatevectorSimulator()
        batch = simulator.run_batch(prefixes)
        for member, prefix in enumerate(prefixes):
            assert _close(batch[member], simulator.run(prefix))

    def test_initial_states_are_respected(self):
        simulator = StatevectorSimulator()
        circuit = _random_circuit(np.random.default_rng(11), 3, 12)
        rng = np.random.default_rng(12)
        states = []
        for _ in range(4):
            state = rng.normal(size=8) + 1j * rng.normal(size=8)
            states.append(state / np.linalg.norm(state))
        batch = simulator.run_batch([circuit] * 4, initial_states=states)
        for member, state in enumerate(states):
            assert _close(batch[member],
                                  simulator.run(circuit, state))

    def test_probabilities_batch(self):
        simulator = StatevectorSimulator()
        circuits = [qft_workload(3), qft_workload(3)]
        probabilities = simulator.probabilities_batch(circuits)
        assert probabilities.shape == (2, 8)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_validation(self):
        simulator = StatevectorSimulator(max_qubits=4)
        with pytest.raises(SimulationError):
            simulator.run_batch([])
        with pytest.raises(SimulationError):
            simulator.run_batch([Circuit(2), Circuit(3)])
        with pytest.raises(SimulationError):
            simulator.run_batch([Circuit(5)])
        with pytest.raises(SimulationError):
            simulator.run_batch([Circuit(2)], initial_states=[])
        with pytest.raises(SimulationError):
            simulator.run_batch([Circuit(2)],
                                initial_states=[np.ones(3, complex)])


class TestBatchProbabilitiesWithInsertions:
    def _serial_reference(self, base_gates, num_qubits, insertions,
                          drops=None):
        simulator = StatevectorSimulator()
        rows = []
        for member, extra in enumerate(insertions):
            circuit = Circuit(num_qubits)
            for index, gate in enumerate(base_gates):
                dropped = drops is not None and index in drops[member]
                if gate.name not in ("barrier", "measure") and not dropped:
                    circuit.append(gate)
                for injected in extra.get(index, ()):
                    circuit.append(injected)
            rows.append(simulator.probabilities(circuit))
        return np.stack(rows)

    def test_insertions_match_serial_per_member_simulation(self):
        circuit = qft_workload(5)
        gates = list(circuit)
        insertions = [
            {member % len(gates): [Gate("x", (member % 5,))],
             (3 * member) % len(gates): [Gate("z", ((member + 1) % 5,))]}
            for member in range(BATCH_BLOCK + 5)  # exercises blocking
        ]
        batched = batch_probabilities_with_insertions(gates, 5, insertions)
        expected = self._serial_reference(gates, 5, insertions)
        assert batched.shape == expected.shape
        assert _close(batched, expected)

    def test_drops_match_serial_per_member_simulation(self):
        circuit = qft_workload(4)
        gates = list(circuit)
        insertions = [{}, {2: [Gate("y", (1,))]}, {}, {0: [Gate("x", (0,))]}]
        drops = [frozenset(), frozenset({1, 4}), frozenset({0}),
                 frozenset({len(gates) - 1})]
        batched = batch_probabilities_with_insertions(gates, 4, insertions,
                                                      drops=drops)
        expected = self._serial_reference(gates, 4, insertions, drops)
        assert _close(batched, expected)

    def test_empty_insertions_reproduce_the_base_distribution(self):
        circuit = qft_workload(4)
        gates = list(circuit)
        batched = batch_probabilities_with_insertions(gates, 4, [{}, {}])
        base = StatevectorSimulator().probabilities(circuit)
        assert _close(batched[0], base)
        assert _close(batched[1], base)

    def test_width_cap_is_enforced(self):
        with pytest.raises(SimulationError):
            batch_probabilities_with_insertions([], 5, [{}], max_qubits=4)
