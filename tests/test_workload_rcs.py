"""Tests for the Random Circuit Sampling workload."""

import pytest

from repro.exceptions import CircuitError
from repro.workloads.rcs import (
    grid_edge_patterns,
    random_circuit_sampling,
    rcs_workload,
)


class TestGridPatterns:
    def test_pattern_edges_cover_grid(self):
        patterns = grid_edge_patterns(4, 4)
        all_edges = {edge for pattern in patterns for edge in pattern}
        # A 4x4 grid has 2 * 4 * 3 = 24 edges.
        assert len(all_edges) == 24

    def test_patterns_are_disjoint_within_themselves(self):
        for pattern in grid_edge_patterns(4, 4):
            touched = [q for edge in pattern for q in edge]
            assert len(touched) == len(set(touched))

    def test_single_row_grid(self):
        patterns = grid_edge_patterns(1, 5)
        assert all(all(abs(a - b) == 1 for a, b in p) for p in patterns)


class TestStructure:
    def test_table2_count(self):
        circuit = rcs_workload(64)
        assert circuit.num_two_qubit_gates() == 560

    def test_qubit_count_and_name(self):
        circuit = rcs_workload(64)
        assert circuit.num_qubits == 64
        assert "rcs" in circuit.name

    def test_deterministic_for_fixed_seed(self):
        a = random_circuit_sampling(16, cycles=4, seed=9)
        b = random_circuit_sampling(16, cycles=4, seed=9)
        assert a.gates == b.gates

    def test_different_seeds_differ(self):
        a = random_circuit_sampling(16, cycles=4, seed=1)
        b = random_circuit_sampling(16, cycles=4, seed=2)
        assert a.gates != b.gates

    def test_explicit_grid_shape(self):
        circuit = random_circuit_sampling(12, cycles=2, rows=3, columns=4)
        assert circuit.num_qubits == 12

    def test_spans_limited_to_grid_neighbours(self):
        circuit = random_circuit_sampling(16, cycles=8, rows=4, columns=4)
        spans = {g.span for g in circuit if g.is_two_qubit}
        assert spans <= {1, 4}

    def test_no_repeated_single_qubit_gate_on_same_qubit(self):
        # Google's RCS rule: the single-qubit gate on a qubit differs from the
        # one applied in the previous cycle.
        circuit = random_circuit_sampling(9, cycles=6, rows=3, columns=3, seed=3)
        last: dict[int, str] = {}
        for gate in circuit:
            if gate.num_qubits == 1 and gate.name != "h":
                qubit = gate.qubits[0]
                key = gate.name + (f"{gate.params}" if gate.params else "")
                assert last.get(qubit) != key
                last[qubit] = key

    def test_measure_flag(self):
        circuit = random_circuit_sampling(4, cycles=1, measure=True)
        assert circuit.count_ops()["measure"] == 4

    def test_invalid_arguments(self):
        with pytest.raises(CircuitError):
            random_circuit_sampling(1)
        with pytest.raises(CircuitError):
            random_circuit_sampling(12, rows=3, columns=3)
