"""Tests for the Bernstein-Vazirani workload."""

import pytest

from repro.exceptions import CircuitError
from repro.sim.statevector import StatevectorSimulator
from repro.workloads.bv import bernstein_vazirani, bv_workload


class TestCorrectness:
    @pytest.mark.parametrize("secret", ["101", "000", "111", "010"])
    def test_recovers_secret_string(self, secret):
        circuit = bernstein_vazirani(len(secret) + 1, secret)
        outcome = StatevectorSimulator().most_probable(circuit)
        assert outcome[: len(secret)] == secret

    @pytest.mark.parametrize("secret_int", [0, 1, 5, 7])
    def test_integer_secret(self, secret_int):
        circuit = bernstein_vazirani(4, secret_int)
        outcome = StatevectorSimulator().most_probable(circuit)
        recovered = int(outcome[:3][::-1], 2)
        assert recovered == secret_int

    def test_data_register_outcome_is_deterministic(self):
        # The ancilla stays in |->, so exactly two basis states (differing
        # only in the ancilla bit) share all the probability.
        probabilities = sorted(
            StatevectorSimulator().probabilities(bernstein_vazirani(5, "1011")),
            reverse=True,
        )
        assert probabilities[0] + probabilities[1] == pytest.approx(1.0)
        assert probabilities[2] == pytest.approx(0.0, abs=1e-12)


class TestStructure:
    def test_default_secret_is_all_ones(self):
        circuit = bv_workload(64)
        assert circuit.count_ops()["cx"] == 63

    def test_every_cx_targets_the_ancilla(self):
        circuit = bv_workload(16)
        ancilla = 15
        assert all(g.qubits[1] == ancilla for g in circuit if g.name == "cx")

    def test_measure_flag(self):
        circuit = bernstein_vazirani(4, "111", measure=True)
        assert circuit.count_ops()["measure"] == 3

    def test_invalid_arguments(self):
        with pytest.raises(CircuitError):
            bernstein_vazirani(1)
        with pytest.raises(CircuitError):
            bernstein_vazirani(4, "11")  # wrong length
        with pytest.raises(CircuitError):
            bernstein_vazirani(4, 8)  # does not fit
        with pytest.raises(CircuitError):
            bernstein_vazirani(4, "1x1")
