"""Tests for repro.obs.live and repro.obs.profile.

The live plane: a :class:`ProgressMonitor` subscribed to the trace
stream must derive planned/completed, throughput/ETA, rolling cache-hit
ratio and straggler alerts from the records the engine already emits,
stream them as heartbeat JSONL (and optionally one stderr line), and
never influence results.  The profile plane: opt-in per-job resource
capture attached to ``job.execute`` spans — including spans merged back
from pool workers — rendered by the report CLI as a resource table.
"""

from __future__ import annotations

import io
import json
import os
from pathlib import Path

import pytest

from repro.arch.ideal import IdealTrappedIonDevice
from repro.arch.tilt import TiltDevice
from repro.exec import ExecutionEngine, JobSpec
from repro.exec.sampling import run_sampled_job
from repro.noise.parameters import NoiseParameters
from repro.obs import profile as obs_profile
from repro.obs.live import (
    LIVE_ENV_VAR,
    LIVE_STDERR_ENV_VAR,
    ProgressMonitor,
    auto_attach,
)
from repro.obs.profile import (
    PROFILE_ENV_VAR,
    TOP_ALLOCATIONS,
    JobProfiler,
    profile_enabled,
    refresh_mode,
    start_job_profile,
)
from repro.obs.report import format_report, load_trace
from repro.obs.trace import NULL_TRACE, TraceRecorder
from repro.workloads.bv import bv_workload
from repro.workloads.qft import qft_workload

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(autouse=True)
def _obs_env_off(monkeypatch):
    """Each test starts (and ends) with profiling and ambient live
    monitoring resolved back to off; tests opt in explicitly."""
    for var in (PROFILE_ENV_VAR, LIVE_ENV_VAR, LIVE_STDERR_ENV_VAR):
        monkeypatch.delenv(var, raising=False)
    refresh_mode()
    yield
    monkeypatch.delenv(PROFILE_ENV_VAR, raising=False)
    refresh_mode()


def _specs() -> list[JobSpec]:
    noise = NoiseParameters.paper_defaults()
    return [
        JobSpec(circuit=bv_workload(8),
                device=TiltDevice(num_qubits=8, head_size=4),
                noise=noise, label="tilt-a"),
        JobSpec(circuit=qft_workload(4),
                device=IdealTrappedIonDevice(num_qubits=4),
                backend="ideal", noise=noise, label="ideal-a"),
    ]


def _beats(path) -> list[dict]:
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


# ----------------------------------------------------------------------
# ProgressMonitor
# ----------------------------------------------------------------------
class TestProgressMonitor:
    def test_rejects_disabled_recorder(self):
        with pytest.raises(ValueError, match="enabled TraceRecorder"):
            ProgressMonitor(NULL_TRACE)

    def test_real_run_heartbeats_planned_vs_completed(self, tmp_path):
        trace = TraceRecorder(tmp_path / "t.jsonl")
        heartbeat = tmp_path / "hb.jsonl"
        monitor = ProgressMonitor(trace, heartbeat_path=heartbeat).attach()
        ExecutionEngine(workers=1, trace=trace).run(_specs())
        monitor.detach()
        beats = _beats(heartbeat)
        assert beats, "no heartbeats written"
        final = beats[-1]
        assert final["kind"] == "heartbeat"
        assert final["phase"] == "batch"
        assert final["planned"] == 2
        assert final["completed"] == 2
        assert final["remaining"] == 0
        assert final["batches"] == 1
        assert final["cache_hit_ratio"] == 0.0
        # per-backend rows key the toolchain backend of each job.done
        assert set(final["backends"]) == {"tilt", "ideal"}
        assert final["batch"]["jobs"] == 2

    def test_cache_hits_raise_the_rolling_ratio(self, tmp_path):
        trace = TraceRecorder(tmp_path / "t.jsonl")
        heartbeat = tmp_path / "hb.jsonl"
        ProgressMonitor(trace, heartbeat_path=heartbeat).attach()
        engine = ExecutionEngine(workers=1, trace=trace)
        engine.run(_specs())
        engine.run(_specs())
        final = _beats(heartbeat)[-1]
        assert final["batches"] == 2
        assert final["jobs_seen"] == 4
        assert final["cache_hits"] == 2
        assert final["cache_hit_ratio"] == 0.5

    def test_eta_appears_mid_batch(self, tmp_path):
        """Synthetic stream: plan 4, complete 2 → ETA extrapolates."""
        trace = TraceRecorder(tmp_path / "t.jsonl")
        heartbeat = tmp_path / "hb.jsonl"
        ProgressMonitor(trace, heartbeat_path=heartbeat).attach()
        with trace.span("engine.cache_lookup") as span:
            span.add(unique=4, cache_hits=0, deduplicated=0)
        for index in range(2):
            trace.event("job.done", spec_key=f"k{index}",
                        wall_time_s=0.01, backend="tilt", label="x")
        last = _beats(heartbeat)[-1]
        assert last["planned"] == 4
        assert last["completed"] == 2
        assert last["remaining"] == 2
        assert last["throughput_jps"] > 0
        assert last["eta_s"] is not None and last["eta_s"] > 0

    def test_straggler_alert_fires_past_quantile_threshold(self, tmp_path):
        trace = TraceRecorder(tmp_path / "t.jsonl")
        heartbeat = tmp_path / "hb.jsonl"
        ProgressMonitor(trace, heartbeat_path=heartbeat,
                        straggler_factor=2.0, min_samples=3).attach()
        for index in range(3):
            trace.event("job.done", spec_key=f"k{index}",
                        wall_time_s=0.01, backend="tilt", label="fast")
        trace.event("job.done", spec_key="slow", wall_time_s=10.0,
                    backend="tilt", label="slow-job")
        beats = _beats(heartbeat)
        alerts = [b for b in beats if b["kind"] == "alert"]
        assert len(alerts) == 1
        alert = alerts[0]
        assert alert["alert"] == "straggler"
        assert alert["label"] == "slow-job"
        assert alert["wall_time_s"] == 10.0
        assert alert["threshold_s"] == pytest.approx(0.02)
        assert beats[-1]["alerts"] == 1

    def test_no_alert_before_min_samples(self, tmp_path):
        trace = TraceRecorder(tmp_path / "t.jsonl")
        heartbeat = tmp_path / "hb.jsonl"
        ProgressMonitor(trace, heartbeat_path=heartbeat,
                        min_samples=20).attach()
        trace.event("job.done", spec_key="k", wall_time_s=10.0,
                    backend="tilt", label="first")
        assert all(b["kind"] != "alert" for b in _beats(heartbeat))

    def test_sampling_fanout_lands_in_heartbeats(self, tmp_path):
        trace = TraceRecorder(tmp_path / "t.jsonl")
        heartbeat = tmp_path / "hb.jsonl"
        ProgressMonitor(trace, heartbeat_path=heartbeat).attach()
        engine = ExecutionEngine(workers=1, trace=trace)
        noise = NoiseParameters.paper_defaults()
        spec = JobSpec(
            circuit=__import__("repro.workloads.qft",
                               fromlist=["qft_workload"]).qft_workload(4),
            device=IdealTrappedIonDevice(num_qubits=4), backend="ideal",
            noise=noise, shots=32, seed=3, label="sampled",
        )
        run_sampled_job(spec, shards=2, engine=engine)
        final = _beats(heartbeat)[-1]
        assert final["fanout"]["shards"] == 2
        assert final["fanout"]["shots"] == 32

    def test_stderr_renderer_writes_single_line(self, tmp_path):
        trace = TraceRecorder(tmp_path / "t.jsonl")
        stream = io.StringIO()
        ProgressMonitor(trace, stream=stream).attach()
        ExecutionEngine(workers=1, trace=trace).run(_specs())
        rendered = stream.getvalue()
        assert "[obs.live]" in rendered
        assert "2/2 jobs" in rendered
        # the final batch heartbeat terminates the status line
        assert rendered.endswith("\n")

    def test_monitor_never_breaks_the_run(self, tmp_path):
        """A throwing listener is swallowed by the recorder."""
        trace = TraceRecorder(tmp_path / "t.jsonl")

        def explode(record):
            raise RuntimeError("listener bug")

        trace.subscribe(explode)
        results = ExecutionEngine(workers=1, trace=trace).run(_specs())
        assert len(results) == 2


class TestAutoAttach:
    def test_off_without_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(LIVE_ENV_VAR, raising=False)
        monkeypatch.delenv(LIVE_STDERR_ENV_VAR, raising=False)
        trace = TraceRecorder(tmp_path / "t.jsonl")
        assert auto_attach(trace) is None
        engine = ExecutionEngine(workers=1, trace=trace)
        assert engine.monitor is None

    def test_disabled_recorder_never_attaches(self, monkeypatch, tmp_path):
        monkeypatch.setenv(LIVE_ENV_VAR, str(tmp_path / "hb.jsonl"))
        assert auto_attach(NULL_TRACE) is None

    def test_env_attaches_one_monitor_per_trace_path(
            self, tmp_path, monkeypatch):
        heartbeat = tmp_path / "hb.jsonl"
        monkeypatch.setenv(LIVE_ENV_VAR, str(heartbeat))
        monkeypatch.delenv(LIVE_STDERR_ENV_VAR, raising=False)
        trace = TraceRecorder(tmp_path / "t.jsonl")
        first = ExecutionEngine(workers=1, trace=trace)
        second = ExecutionEngine(workers=1, trace=trace)
        assert first.monitor is not None
        assert first.monitor is second.monitor
        assert first.monitor.heartbeat_path == str(heartbeat)
        first.run(_specs())
        final = _beats(heartbeat)[-1]
        assert final["completed"] == 2


# ----------------------------------------------------------------------
# Per-job resource profiling
# ----------------------------------------------------------------------
class TestProfile:
    @pytest.mark.parametrize("raw, expected", [
        ("", None), ("0", None), ("off", None), ("no", None),
        ("1", "cpu"), ("cpu", "cpu"), ("yes", "cpu"),
        ("tracemalloc", "tracemalloc"), ("alloc", "tracemalloc"),
    ])
    def test_mode_parsing(self, monkeypatch, raw, expected):
        monkeypatch.setenv(PROFILE_ENV_VAR, raw)
        assert refresh_mode() == expected
        assert profile_enabled() is (expected is not None)

    def test_start_job_profile_off_is_none(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV_VAR, raising=False)
        refresh_mode()
        assert start_job_profile() is None

    def test_cpu_profile_payload_shape(self):
        profiler = JobProfiler("cpu")
        sum(i * i for i in range(20000))  # burn a little CPU
        payload = profiler.finish()
        assert payload["mode"] == "cpu"
        assert payload["cpu_user_s"] >= 0.0
        assert payload["cpu_system_s"] >= 0.0
        # POSIX: rusage fields present and sane
        assert payload["max_rss_kb"] > 0
        assert payload["minor_faults"] >= 0
        json.dumps(payload)  # span attrs must serialise as-is

    def test_tracemalloc_profile_reports_allocation_sites(self):
        profiler = JobProfiler("tracemalloc")
        hoard = [bytearray(4096) for _ in range(200)]
        payload = profiler.finish()
        assert payload["mode"] == "tracemalloc"
        assert payload["py_peak_kb"] > 0
        sites = payload["allocations"]
        assert 0 < len(sites) <= TOP_ALLOCATIONS
        top = sites[0]
        assert ":" in top["site"]
        assert top["size_kb"] > 0
        assert hoard  # keep the allocation alive across finish()

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_profiled_spans_carry_profile_attrs(
            self, tmp_path, monkeypatch, backend):
        """Profiles ride job.execute spans — including spans merged
        back from pool-worker sidecar segments."""
        monkeypatch.setenv(PROFILE_ENV_VAR, "1")
        refresh_mode()
        path = tmp_path / "t.jsonl"
        engine = ExecutionEngine(workers=2, backend=backend, trace=path)
        engine.run(_specs())
        view = load_trace(str(path))
        jobs = view.named("job.execute")
        assert jobs
        for job in jobs:
            profile = job.attrs["profile"]
            assert profile["mode"] == "cpu"
            assert profile["cpu_user_s"] >= 0.0

    def test_untraced_jobs_are_never_profiled(self, monkeypatch, tmp_path):
        """No span, nowhere to put the data: the profiler is skipped."""
        monkeypatch.setenv(PROFILE_ENV_VAR, "1")
        refresh_mode()
        monkeypatch.delenv("TILT_REPRO_TRACE", raising=False)
        monkeypatch.delenv("TILT_REPRO_HISTORY", raising=False)
        monkeypatch.chdir(tmp_path)
        results = ExecutionEngine(workers=1).run(_specs())
        assert len(results) == 2
        assert list(tmp_path.iterdir()) == []

    def test_report_renders_resource_table(self, tmp_path, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV_VAR, "1")
        refresh_mode()
        path = tmp_path / "t.jsonl"
        ExecutionEngine(workers=1, trace=path).run(_specs())
        rendered = format_report(load_trace(str(path)))
        assert "Per-job resources" in rendered
        assert "cpu user" in rendered
        assert "tilt" in rendered and "ideal" in rendered
        assert "heaviest" in rendered

    def test_unprofiled_trace_has_no_resource_section(self):
        view = load_trace(str(FIXTURES / "trace_fixture.jsonl"))
        assert "Per-job resources" not in format_report(view)
