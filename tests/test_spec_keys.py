"""Golden spec-key fixture: cache keys are byte-stable across PRs.

``tests/fixtures/spec_keys.json`` commits two snapshots:

* ``keys`` — :func:`repro.exec.jobs.spec_key` for a representative spec
  of every execution style (analytic, compile-only, sampled, sharded,
  scenario, QCCD, ideal).  These tests recompute them and assert
  byte-identity, so any change that moves cache keys — a JobSpec field,
  a default, the canonical payload, the hash — fails loudly instead of
  silently orphaning every on-disk ResultCache/RunStore.
* ``jobspec_fields`` — the JobSpec dataclass fields as extracted from
  the **AST** by lint rule RPR003
  (:func:`repro.devtools.rules.spec_keys.extract_dataclass_fields`).
  The lint rule compares the source tree against this snapshot on every
  run, so the fixture and the dataclass can only change together.

Intentional changes regenerate the fixture::

    PYTHONPATH=src python tests/test_spec_keys.py --update

and the diff review is where cache-version bumps get decided.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import sys
from pathlib import Path

from repro.arch.ideal import IdealTrappedIonDevice
from repro.arch.qccd import QccdDevice
from repro.arch.tilt import TiltDevice
from repro.compiler.pipeline import CompilerConfig
from repro.devtools.rules.spec_keys import extract_dataclass_fields
from repro.exec.jobs import JobSpec, spec_key
from repro.noise.parameters import NoiseParameters
from repro.workloads.bv import bv_workload
from repro.workloads.qft import qft_workload

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "spec_keys.json"
JOBS_SOURCE = (Path(__file__).parent.parent / "src" / "repro" / "exec"
               / "jobs.py")


def representative_specs() -> dict[str, JobSpec]:
    """One spec per execution style the engine caches.

    Every construction is fully explicit (fixed circuit, device, config,
    calibration, seeds) so the mapping name -> key is a pure function of
    the key derivation — nothing here may depend on environment,
    wall-clock or RNG state.
    """
    tilt = TiltDevice(num_qubits=16, head_size=8)
    config = CompilerConfig(max_swap_len=7, mapper="trivial")
    noise = NoiseParameters.paper_defaults()
    return {
        "analytic_tilt_bv16": JobSpec(
            circuit=bv_workload(16), device=tilt, config=config,
            noise=noise,
        ),
        "compile_only_tilt_bv16": JobSpec(
            circuit=bv_workload(16), device=tilt, config=config,
            noise=noise, simulate=False,
        ),
        "sampled_tilt_qft12": JobSpec(
            circuit=qft_workload(12), device=tilt, config=config,
            noise=noise, shots=256, seed=7,
        ),
        "sampled_shard_tilt_qft12": JobSpec(
            circuit=qft_workload(12), device=tilt, config=config,
            noise=noise, shots=128, seed=7, shot_offset=128,
        ),
        "scenario_crosstalk_tilt_bv16": JobSpec(
            circuit=bv_workload(16), device=tilt, config=config,
            noise=noise, scenario="crosstalk",
        ),
        "architecture_qccd_qft12": JobSpec(
            circuit=qft_workload(12),
            device=QccdDevice(num_qubits=12, trap_capacity=5),
            backend="qccd", noise=noise,
        ),
        "architecture_ideal_bv8": JobSpec(
            circuit=bv_workload(8),
            device=IdealTrappedIonDevice(num_qubits=8),
            backend="ideal", noise=noise,
        ),
    }


def current_snapshot() -> dict:
    """The fixture payload the current tree would record."""
    tree = ast.parse(JOBS_SOURCE.read_text(encoding="utf-8"))
    return {
        "version": 1,
        "comment": "golden cache-key fixture; regenerate with "
                   "'PYTHONPATH=src python tests/test_spec_keys.py "
                   "--update' and review key compatibility in the diff",
        "jobspec_fields": extract_dataclass_fields(tree, "JobSpec"),
        "keys": {name: spec_key(spec)
                 for name, spec in sorted(representative_specs().items())},
    }


def load_fixture() -> dict:
    return json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))


class TestGoldenSpecKeys:
    def test_keys_are_byte_identical(self):
        recorded = load_fixture()["keys"]
        computed = {name: spec_key(spec)
                    for name, spec in representative_specs().items()}
        assert computed == recorded, (
            "spec keys drifted from tests/fixtures/spec_keys.json — "
            "every on-disk cache/store keyed by the old values is now "
            "orphaned; if intentional, regenerate the fixture and "
            "consider a cache-version bump"
        )

    def test_every_style_has_a_distinct_key(self):
        keys = list(load_fixture()["keys"].values())
        assert len(set(keys)) == len(keys)

    def test_fixture_field_snapshot_matches_source_ast(self):
        tree = ast.parse(JOBS_SOURCE.read_text(encoding="utf-8"))
        assert (extract_dataclass_fields(tree, "JobSpec")
                == load_fixture()["jobspec_fields"])

    def test_fixture_field_snapshot_matches_runtime_dataclass(self):
        recorded = [field["name"]
                    for field in load_fixture()["jobspec_fields"]]
        runtime = [field.name for field in dataclasses.fields(JobSpec)]
        assert recorded == runtime

    def test_baseline_scenario_and_zero_shots_stay_keyless(self):
        """The non-default-only hashing contract, pinned structurally."""
        specs = representative_specs()
        base = specs["analytic_tilt_bv16"]
        assert spec_key(base) == spec_key(dataclasses.replace(
            base, scenario="baseline", shots=0, seed=0, shot_offset=0,
        ))
        # seed participates only when shots do
        assert spec_key(dataclasses.replace(base, seed=99)) == spec_key(base)


def main(argv: list[str]) -> int:
    if argv != ["--update"]:
        print("usage: PYTHONPATH=src python tests/test_spec_keys.py "
              "--update", file=sys.stderr)
        return 2
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(current_snapshot(), indent=2, sort_keys=True)
    FIXTURE_PATH.write_text(payload + "\n", encoding="utf-8")
    print(f"wrote {FIXTURE_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
