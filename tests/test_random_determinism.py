"""Determinism regression tests for seeded random-circuit generation."""

import random

import pytest

from repro.circuits.random import random_circuit, random_native_circuit
from repro.exceptions import CircuitError
from repro.workloads.rcs import random_circuit_sampling, rcs_workload


class TestRandomCircuit:
    def test_same_seed_same_circuit(self):
        first = random_circuit(8, 40, seed=123)
        second = random_circuit(8, 40, seed=123)
        assert first == second

    def test_different_seeds_differ(self):
        assert random_circuit(8, 40, seed=1) != random_circuit(8, 40, seed=2)

    def test_rng_matches_equivalent_seed(self):
        seeded = random_circuit(8, 40, seed=7)
        from_rng = random_circuit(8, 40, rng=random.Random(7))
        assert seeded == from_rng

    def test_shared_rng_advances_between_calls(self):
        rng = random.Random(7)
        first = random_circuit(8, 40, rng=rng)
        second = random_circuit(8, 40, rng=rng)
        assert first != second
        # ... and the sequenced pair is itself reproducible
        rng = random.Random(7)
        assert random_circuit(8, 40, rng=rng) == first
        assert random_circuit(8, 40, rng=rng) == second

    def test_seed_and_rng_together_rejected(self):
        with pytest.raises(CircuitError):
            random_circuit(8, 40, seed=1, rng=random.Random(1))

    def test_native_variant_threads_rng(self):
        seeded = random_native_circuit(8, 40, seed=9)
        from_rng = random_native_circuit(8, 40, rng=random.Random(9))
        assert seeded == from_rng
        assert all(gate.is_native for gate in seeded)


class TestRcsDeterminism:
    def test_same_seed_same_circuit(self):
        assert random_circuit_sampling(16, 8, seed=5) == \
            random_circuit_sampling(16, 8, seed=5)

    def test_different_seeds_differ(self):
        assert random_circuit_sampling(16, 8, seed=5) != \
            random_circuit_sampling(16, 8, seed=6)

    def test_rng_matches_equivalent_seed(self):
        from_rng = random_circuit_sampling(16, 8, rng=random.Random(5))
        assert from_rng == random_circuit_sampling(16, 8, seed=5)

    def test_seed_and_rng_together_rejected(self):
        with pytest.raises(CircuitError):
            random_circuit_sampling(16, 8, seed=999, rng=random.Random(5))

    def test_workload_entry_point_forwards_rng(self):
        assert rcs_workload(16, 8, rng=random.Random(5)) == \
            rcs_workload(16, 8, seed=5)

    def test_default_seed_is_stable(self):
        # The Table II workload must not drift run to run.
        assert rcs_workload(16, 8) == rcs_workload(16, 8)
