"""End-to-end integration tests: full toolflow on small paper workloads."""

import pytest

from tests.conftest import routed_state_matches_logical
from repro.arch.tilt import TiltDevice
from repro.compiler.pipeline import CompilerConfig
from repro.core.linq import LinQ
from repro.noise.parameters import NoiseParameters
from repro.sim.statevector import StatevectorSimulator
from repro.workloads.suite import build_workload, standard_suite


class TestFullToolflowOnSuite:
    @pytest.mark.parametrize("name", [spec.name for spec in standard_suite()])
    def test_small_scale_workload_compiles_and_simulates(self, name):
        circuit = build_workload(name, "small")
        device = TiltDevice(num_qubits=circuit.num_qubits,
                            head_size=max(4, circuit.num_qubits // 4))
        report = LinQ(device).run(circuit)
        report.compile_result.program.validate()
        assert 0.0 <= report.success_rate <= 1.0
        assert report.execution_time_s > 0
        # Everything that was compiled got scheduled.
        assert (report.compile_result.program.num_scheduled_gates
                == len(report.compile_result.routed_circuit))

    @pytest.mark.parametrize("name", ["BV", "QFT"])
    def test_compiled_circuit_is_semantically_correct(self, name):
        # Verify the *complete* pipeline output (decompose + map + route) is
        # still the same unitary as the source program, on a width the dense
        # simulator can handle.
        circuit = build_workload(name, "small")
        if circuit.num_qubits > 16:
            pytest.skip("too wide for state-vector verification")
        device = TiltDevice(num_qubits=circuit.num_qubits,
                            head_size=max(4, circuit.num_qubits // 4))
        compiled = LinQ(device).compile(circuit)
        simulator = StatevectorSimulator()
        logical_state = simulator.run(circuit)
        assert routed_state_matches_logical(
            compiled.routed_circuit,
            compiled.final_mapping,
            logical_state,
            simulator,
        )


class TestConfigurationsEndToEnd:
    def test_restricting_max_swap_len_changes_schedule(self):
        circuit = build_workload("QFT", "small")
        device = TiltDevice(num_qubits=16, head_size=8)
        wide = LinQ(device).run(circuit)
        narrow = LinQ(device, CompilerConfig(max_swap_len=4)).run(circuit)
        assert narrow.compile_result.stats.max_swap_span <= 4
        assert wide.compile_result.stats.max_swap_span <= 7

    def test_noise_calibration_changes_success_not_structure(self):
        circuit = build_workload("SQRT", "small")
        device = TiltDevice(num_qubits=circuit.num_qubits, head_size=5)
        default = LinQ(device).run(circuit)
        noisy = LinQ(device, noise_params=NoiseParameters(
            residual_gate_error=1e-3)).run(circuit)
        assert default.num_swaps == noisy.num_swaps
        assert default.num_moves == noisy.num_moves
        assert default.success_rate > noisy.success_rate

    def test_two_head_sizes_reproduce_paper_trend(self):
        circuit = build_workload("QFT", "small")
        small_head = LinQ(TiltDevice(num_qubits=16, head_size=4)).run(circuit)
        large_head = LinQ(TiltDevice(num_qubits=16, head_size=8)).run(circuit)
        assert large_head.num_swaps <= small_head.num_swaps
        assert large_head.num_moves <= small_head.num_moves
        assert (large_head.log10_success_rate
                >= small_head.log10_success_rate)
