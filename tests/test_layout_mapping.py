"""Tests for qubit mappings and initial-mapping heuristics."""

import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.gate import Gate
from repro.compiler.layout import QubitMapping, extend_mapping
from repro.compiler.mapping import (
    GreedyInteractionMapper,
    SpectralMapper,
    TrivialMapper,
    interaction_matrix,
    make_mapper,
)
from repro.exceptions import CompilationError
from repro.workloads.bv import bv_workload


class TestQubitMapping:
    def test_identity(self):
        mapping = QubitMapping.identity(4)
        assert mapping.physical(2) == 2
        assert mapping.logical(3) == 3

    def test_permutation_validation(self):
        with pytest.raises(CompilationError):
            QubitMapping([0, 0, 1])

    def test_swap_physical_updates_both_directions(self):
        mapping = QubitMapping.identity(4)
        mapping.swap_physical(0, 3)
        assert mapping.physical(0) == 3
        assert mapping.physical(3) == 0
        assert mapping.logical(0) == 3
        assert mapping.logical(3) == 0

    def test_distance_and_gate_distance(self):
        mapping = QubitMapping([2, 0, 3, 1])
        assert mapping.distance(0, 1) == 2
        assert mapping.gate_distance(Gate("cx", (0, 2))) == 1
        with pytest.raises(CompilationError):
            mapping.gate_distance(Gate("h", (0,)))

    def test_apply_to_gate(self):
        mapping = QubitMapping([1, 0, 2])
        remapped = mapping.apply_to_gate(Gate("cx", (0, 2)))
        assert remapped.qubits == (1, 2)

    def test_copy_is_independent(self):
        mapping = QubitMapping.identity(3)
        clone = mapping.copy()
        clone.swap_physical(0, 1)
        assert mapping.physical(0) == 0

    def test_extend_mapping(self):
        mapping = QubitMapping([1, 0])
        extended = extend_mapping(mapping, 4)
        assert extended.physical(0) == 1
        assert sorted(extended.logical_to_physical()) == [0, 1, 2, 3]
        with pytest.raises(CompilationError):
            extend_mapping(extended, 2)

    def test_round_trip_views(self):
        mapping = QubitMapping([2, 0, 1])
        log_to_phys = mapping.logical_to_physical()
        phys_to_log = mapping.physical_to_logical()
        for logical, physical in enumerate(log_to_phys):
            assert phys_to_log[physical] == logical


class TestInteractionMatrix:
    def test_symmetric_counts(self):
        circuit = Circuit(3).cx(0, 1).cx(1, 0).cx(1, 2)
        matrix = interaction_matrix(circuit, 3)
        assert matrix[0, 1] == matrix[1, 0] == 2
        assert matrix[1, 2] == 1

    def test_decay_discounts_later_gates(self):
        circuit = Circuit(3).cx(0, 1).cx(1, 2)
        matrix = interaction_matrix(circuit, 3, decay=0.5)
        assert matrix[0, 1] > matrix[1, 2]


class TestMappers:
    def _is_permutation(self, mapping: QubitMapping, size: int) -> bool:
        return sorted(mapping.logical_to_physical()) == list(range(size))

    def test_trivial(self):
        mapping = TrivialMapper().map(bv_workload(8), 8)
        assert mapping == QubitMapping.identity(8)

    @pytest.mark.parametrize("mapper_name", ["trivial", "spectral", "greedy"])
    def test_all_mappers_produce_valid_permutations(self, mapper_name):
        circuit = bv_workload(10)
        mapping = make_mapper(mapper_name).map(circuit, 12)
        assert self._is_permutation(mapping, 12)

    def test_spectral_places_interacting_qubits_adjacently(self):
        # A path-interaction circuit should map to (nearly) a path layout.
        circuit = Circuit(6)
        for q in range(5):
            circuit.cx(q, q + 1)
        mapping = SpectralMapper().map(circuit, 6)
        spans = [mapping.distance(q, q + 1) for q in range(5)]
        assert max(spans) <= 2

    def test_greedy_reduces_star_distance(self):
        circuit = bv_workload(12)  # star graph centred on the ancilla
        trivial_cost = sum(
            QubitMapping.identity(12).gate_distance(g)
            for g in circuit.two_qubit_gates()
        )
        greedy = GreedyInteractionMapper().map(circuit, 12)
        greedy_cost = sum(
            greedy.gate_distance(g) for g in circuit.two_qubit_gates()
        )
        assert greedy_cost < trivial_cost

    def test_mapper_without_interactions_falls_back_to_identity(self):
        circuit = Circuit(4).h(0).h(1)
        assert SpectralMapper().map(circuit, 4) == QubitMapping.identity(4)
        assert GreedyInteractionMapper().map(circuit, 4) == QubitMapping.identity(4)

    def test_width_check(self):
        with pytest.raises(CompilationError):
            TrivialMapper().map(Circuit(8), 4)

    def test_unknown_mapper_name(self):
        with pytest.raises(CompilationError):
            make_mapper("magic")

    def test_invalid_decay(self):
        with pytest.raises(CompilationError):
            SpectralMapper(decay=0.0)
