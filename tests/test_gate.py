"""Unit tests for the Gate primitive."""

import math

import pytest

from repro.circuits.gate import GATE_SPECS, Gate, gate
from repro.exceptions import CircuitError


class TestConstruction:
    def test_simple_gate(self):
        g = Gate("h", (3,))
        assert g.name == "h"
        assert g.qubits == (3,)
        assert g.params == ()
        assert g.num_qubits == 1

    def test_parameterised_gate(self):
        g = Gate("rz", (0,), (math.pi / 2,))
        assert g.params == (math.pi / 2,)

    def test_two_qubit_gate(self):
        g = Gate("cx", (1, 4))
        assert g.num_qubits == 2
        assert g.is_two_qubit
        assert g.span == 3

    def test_qubits_are_coerced_to_int(self):
        g = Gate("x", (np_int := 2,))
        assert isinstance(g.qubits[0], int)
        assert g.qubits[0] == np_int

    def test_helper_constructor(self):
        assert gate("cx", [0, 1]) == Gate("cx", (0, 1))

    def test_unknown_name_rejected(self):
        with pytest.raises(CircuitError):
            Gate("foo", (0,))

    def test_wrong_qubit_count_rejected(self):
        with pytest.raises(CircuitError):
            Gate("cx", (0,))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(CircuitError):
            Gate("cx", (1, 1))

    def test_negative_qubit_rejected(self):
        with pytest.raises(CircuitError):
            Gate("x", (-1,))

    def test_wrong_param_count_rejected(self):
        with pytest.raises(CircuitError):
            Gate("rz", (0,))
        with pytest.raises(CircuitError):
            Gate("x", (0,), (0.1,))

    def test_barrier_needs_qubits(self):
        with pytest.raises(CircuitError):
            Gate("barrier", ())

    def test_barrier_accepts_any_width(self):
        g = Gate("barrier", (0, 1, 2, 3, 4))
        assert g.num_qubits == 5


class TestProperties:
    def test_native_membership(self):
        assert Gate("rx", (0,), (1.0,)).is_native
        assert Gate("xx", (0, 1), (0.5,)).is_native
        assert not Gate("cx", (0, 1)).is_native

    def test_unitary_flag(self):
        assert Gate("h", (0,)).is_unitary
        assert not Gate("measure", (0,)).is_unitary
        assert not Gate("barrier", (0, 1)).is_unitary

    def test_span_single_qubit(self):
        assert Gate("h", (5,)).span == 0

    def test_every_spec_entry_is_constructible(self):
        for name, (num_qubits, num_params) in GATE_SPECS.items():
            width = 2 if num_qubits < 0 else num_qubits
            g = Gate(name, tuple(range(width)), tuple(0.1 for _ in range(num_params)))
            assert g.name == name

    def test_str_contains_name_and_qubits(self):
        text = str(Gate("cp", (0, 2), (0.5,)))
        assert "cp" in text and "[0, 2]" in text


class TestRemap:
    def test_remap_with_list(self):
        g = Gate("cx", (0, 2)).remapped([5, 6, 7])
        assert g.qubits == (5, 7)

    def test_remap_with_dict(self):
        g = Gate("cx", (0, 2)).remapped({0: 9, 2: 1})
        assert g.qubits == (9, 1)

    def test_remap_preserves_params(self):
        g = Gate("rz", (1,), (0.25,)).remapped([3, 4])
        assert g.params == (0.25,)


class TestInverse:
    def test_self_inverse_gates(self):
        for name in ("x", "y", "z", "h", "cx", "cz", "swap", "ccx"):
            width = GATE_SPECS[name][0]
            g = Gate(name, tuple(range(width)))
            assert g.inverse() == g

    def test_s_t_pairs(self):
        assert Gate("s", (0,)).inverse().name == "sdg"
        assert Gate("tdg", (0,)).inverse().name == "t"

    def test_rotation_inverse_negates_angle(self):
        g = Gate("rz", (0,), (0.7,))
        assert g.inverse().params == (-0.7,)

    def test_u3_inverse_swaps_phases(self):
        g = Gate("u3", (0,), (0.1, 0.2, 0.3))
        assert g.inverse().params == (-0.1, -0.3, -0.2)

    def test_measure_has_no_inverse(self):
        with pytest.raises(CircuitError):
            Gate("measure", (0,)).inverse()

    def test_inverse_is_involution_for_rotations(self):
        g = Gate("xx", (0, 1), (0.3,))
        assert g.inverse().inverse() == g
