"""Tests for the noise model: parameters, gate times, heating and fidelity."""

import math

import pytest

from repro.circuits.gate import Gate
from repro.exceptions import SimulationError
from repro.noise.fidelity import (
    SuccessRateAccumulator,
    gate_fidelity,
    one_qubit_fidelity,
    two_qubit_fidelity,
)
from repro.noise.gate_times import (
    XX_GATES_PER_SWAP,
    gate_time_us,
    two_qubit_gate_time_us,
)
from repro.noise.heating import ChainHeatingState, quanta_after_moves
from repro.noise.parameters import NoiseParameters


class TestParameters:
    def test_paper_defaults_validate(self):
        assert NoiseParameters.paper_defaults() == NoiseParameters()

    def test_noiseless_preset(self):
        params = NoiseParameters.noiseless()
        assert params.residual_gate_error == 0.0
        assert params.one_qubit_gate_error == 0.0

    def test_with_overrides(self):
        params = NoiseParameters().with_overrides(residual_gate_error=1e-3)
        assert params.residual_gate_error == 1e-3

    def test_shuttle_quanta_sqrt_scaling(self):
        params = NoiseParameters()
        base = params.shuttle_quanta(params.shuttle_reference_ions)
        quadrupled = params.shuttle_quanta(4 * params.shuttle_reference_ions)
        assert quadrupled == pytest.approx(2 * base)

    def test_validation_errors(self):
        with pytest.raises(SimulationError):
            NoiseParameters(residual_gate_error=-1)
        with pytest.raises(SimulationError):
            NoiseParameters(one_qubit_gate_time_us=0)
        with pytest.raises(SimulationError):
            NoiseParameters(qccd_cooling_factor=1.5)
        with pytest.raises(SimulationError):
            NoiseParameters().shuttle_quanta(0)


class TestGateTimes:
    def test_eq3_values(self):
        params = NoiseParameters()
        assert two_qubit_gate_time_us(1, params) == pytest.approx(48.0)
        assert two_qubit_gate_time_us(10, params) == pytest.approx(390.0)

    def test_distance_must_be_positive(self):
        with pytest.raises(SimulationError):
            two_qubit_gate_time_us(0, NoiseParameters())

    def test_gate_time_dispatch(self):
        params = NoiseParameters()
        assert gate_time_us(Gate("rz", (0,), (0.1,)), params) == params.one_qubit_gate_time_us
        assert gate_time_us(Gate("barrier", (0, 1)), params) == 0.0
        assert gate_time_us(Gate("xx", (2, 5), (0.1,)), params) == pytest.approx(
            38.0 * 3 + 10.0
        )

    def test_swap_costs_three_xx(self):
        params = NoiseParameters()
        xx_time = gate_time_us(Gate("xx", (0, 4), (0.1,)), params)
        swap_time = gate_time_us(Gate("swap", (0, 4)), params)
        assert swap_time == pytest.approx(XX_GATES_PER_SWAP * xx_time)

    def test_undecomposed_gate_rejected(self):
        with pytest.raises(SimulationError):
            gate_time_us(Gate("ccx", (0, 1, 2)), NoiseParameters())


class TestHeating:
    def test_quanta_after_moves(self):
        params = NoiseParameters()
        assert quanta_after_moves(0, 64, params) == 0.0
        assert quanta_after_moves(4, 64, params) == pytest.approx(
            4 * params.shuttle_quanta(64)
        )
        with pytest.raises(SimulationError):
            quanta_after_moves(-1, 64, params)

    def test_chain_state_accumulates(self):
        state = ChainHeatingState(NoiseParameters(), chain_length=64)
        first = state.record_linear_shuttle()
        state.record_linear_shuttle()
        assert state.quanta == pytest.approx(2 * first)
        assert state.num_shuttles == 2

    def test_qccd_primitives(self):
        params = NoiseParameters()
        state = ChainHeatingState(params, chain_length=16)
        state.record_qccd_primitive(3)
        assert state.quanta == pytest.approx(3 * params.qccd_shuttle_quanta)

    def test_cooling(self):
        state = ChainHeatingState(NoiseParameters(), chain_length=16, quanta=10.0)
        state.apply_cooling(0.5)
        assert state.quanta == pytest.approx(5.0)
        with pytest.raises(SimulationError):
            state.apply_cooling(2.0)

    def test_cooled_copy_resets(self):
        state = ChainHeatingState(NoiseParameters(), chain_length=16, quanta=9.0)
        assert state.cooled().quanta == 0.0
        assert state.quanta == 9.0

    def test_cooled_copy_preserves_event_counters(self):
        # regression: cooling resets motional energy, not history — the
        # shuttle/primitive counters are per-run telemetry and must
        # survive every cooling event
        state = ChainHeatingState(NoiseParameters(), chain_length=16)
        state.record_linear_shuttle()
        state.record_qccd_primitive(4)
        cooled = state.cooled()
        assert cooled.quanta == 0.0
        assert cooled.num_shuttles == 1
        assert cooled.num_qccd_ops == 4

    def test_invalid_chain_length(self):
        with pytest.raises(SimulationError):
            ChainHeatingState(NoiseParameters(), chain_length=0)


class TestFidelity:
    def test_eq4_at_zero_quanta(self):
        params = NoiseParameters()
        fidelity = two_qubit_fidelity(100.0, 0.0, params)
        expected = 1.0 - params.background_heating_rate_per_us * 100.0 - (
            (1 + params.residual_gate_error) - 1
        )
        assert fidelity == pytest.approx(expected)

    def test_monotone_in_quanta(self):
        params = NoiseParameters()
        values = [two_qubit_fidelity(100.0, q, params) for q in (0, 10, 100, 1000)]
        assert values == sorted(values, reverse=True)

    def test_monotone_in_gate_time(self):
        params = NoiseParameters()
        assert two_qubit_fidelity(50.0, 5.0, params) > two_qubit_fidelity(
            500.0, 5.0, params
        )

    def test_clamped_to_unit_interval(self):
        params = NoiseParameters(residual_gate_error=0.5)
        assert two_qubit_fidelity(10.0, 1e4, params) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(SimulationError):
            two_qubit_fidelity(-1.0, 0.0, NoiseParameters())
        with pytest.raises(SimulationError):
            two_qubit_fidelity(1.0, -0.1, NoiseParameters())

    def test_one_qubit_fidelity(self):
        params = NoiseParameters(one_qubit_gate_error=1e-3)
        assert one_qubit_fidelity(params) == pytest.approx(0.999)

    def test_gate_fidelity_dispatch(self):
        params = NoiseParameters()
        assert gate_fidelity(Gate("barrier", (0, 1)), 0.0, params) == 1.0
        xx = gate_fidelity(Gate("xx", (0, 3), (0.1,)), 2.0, params)
        swap = gate_fidelity(Gate("swap", (0, 3)), 2.0, params)
        assert swap == pytest.approx(xx**3)
        assert gate_fidelity(Gate("rz", (0,), (0.3,)), 5.0, params) == one_qubit_fidelity(params)

    def test_gate_fidelity_rejects_undecomposed(self):
        with pytest.raises(SimulationError):
            gate_fidelity(Gate("ccx", (0, 1, 2)), 0.0, NoiseParameters())


class TestAccumulator:
    def test_product_matches_direct_multiplication(self):
        accumulator = SuccessRateAccumulator()
        for fidelity in (0.99, 0.98, 0.97):
            accumulator.add(fidelity)
        assert accumulator.success_rate == pytest.approx(0.99 * 0.98 * 0.97)
        assert accumulator.num_gates == 3

    def test_no_underflow_in_log_space(self):
        accumulator = SuccessRateAccumulator()
        for _ in range(100_000):
            accumulator.add(0.99)
        assert accumulator.success_rate == 0.0  # underflows as a float
        assert accumulator.log10_success_rate == pytest.approx(
            100_000 * math.log10(0.99)
        )

    def test_zero_fidelity_short_circuits(self):
        accumulator = SuccessRateAccumulator()
        accumulator.add(0.9)
        accumulator.add(0.0)
        assert accumulator.success_rate == 0.0
        assert accumulator.log10_success_rate == float("-inf")

    def test_statistics(self):
        accumulator = SuccessRateAccumulator()
        accumulator.add(1.0)
        accumulator.add(0.81)
        assert accumulator.worst_gate_fidelity == pytest.approx(0.81)
        assert accumulator.average_gate_fidelity == pytest.approx(0.9)

    def test_invalid_fidelity(self):
        with pytest.raises(SimulationError):
            SuccessRateAccumulator().add(1.2)
