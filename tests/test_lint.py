"""Tests for the invariant linter (repro.devtools) and its corpus.

Three layers:

* engine mechanics — suppression grammar, treat-as scoping, rule
  selection, JSON report shape, exit codes, syntax-error handling;
* the per-rule positive/negative corpus under ``tests/lint_corpus/``
  (each rule must fire on its ``*_bad.py`` and stay silent on its
  ``*_good.py``);
* the self-gate — linting the repo's own ``src``/``tests``/
  ``benchmarks``/``examples`` must come back clean, which is the same
  check the blocking CI step runs.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools import META_RULE, all_rules, run_lint
from repro.devtools.lint import main as lint_main
from repro.devtools.rules import all_graph_rules

REPO_ROOT = Path(__file__).parent.parent
CORPUS = Path(__file__).parent / "lint_corpus"

RULE_IDS = ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005")
GRAPH_RULE_IDS = ("RPR006", "RPR007", "RPR008", "RPR009")
ALL_RULE_IDS = RULE_IDS + GRAPH_RULE_IDS

#: How many findings each positive corpus file must produce for its rule.
EXPECTED_BAD_COUNTS = {
    "RPR001": 7,   # 2 wall-clock + 5 RNG findings in rpr001_bad.py
    "RPR002": 3,   # pool import + .run + .run_stochastic
    "RPR003": 1,   # one drift finding naming every changed field
    "RPR004": 2,   # orphaned construction + function-nested register
    "RPR005": 3,   # bare except + silent Exception + silent BaseException
    "RPR006": 4,   # imports of exec, analysis, obs, devtools from circuits
    "RPR007": 2 + 2 + 2,  # bad spec fields + ambient handles + closures
    "RPR008": 4,   # item write, .append, global rebind, transitive .update
    "RPR009": 4,   # module-level rng + constant + ambient + const-derived
}


def lint_one(name: str, **kwargs):
    return run_lint([CORPUS / name], **kwargs)


class TestCorpus:
    @pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
    def test_positive_corpus_fires(self, rule_id):
        report = lint_one(f"{rule_id.lower()}_bad.py", select=[rule_id],
                          graph=True)
        fired = [v for v in report.active if v.rule == rule_id]
        assert len(fired) == EXPECTED_BAD_COUNTS[rule_id], [
            v.format() for v in report.active
        ]
        assert report.exit_code == 1

    @pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
    def test_negative_corpus_is_clean(self, rule_id):
        report = lint_one(f"{rule_id.lower()}_good.py", select=[rule_id],
                          graph=True)
        assert report.active == [], [v.format() for v in report.active]
        assert report.exit_code == 0

    @pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
    def test_positive_corpus_clean_under_all_other_rules(self, rule_id):
        """Each bad file violates *only* its own rule (corpus hygiene)."""
        report = lint_one(f"{rule_id.lower()}_bad.py",
                          ignore=[rule_id], graph=True)
        assert report.active == [], [v.format() for v in report.active]

    def test_import_cycle_fixture_fires_once(self):
        """The two cycle halves linted together yield one RPR006
        finding, anchored at the alphabetically-smallest member."""
        report = run_lint(
            [CORPUS / "rpr006_cycle_a.py", CORPUS / "rpr006_cycle_b.py"],
            graph=True,
        )
        assert [v.rule for v in report.active] == ["RPR006"]
        finding = report.active[0]
        assert finding.path.endswith("rpr006_cycle_a.py")
        assert "repro.sim.cycle_a -> repro.sim.cycle_b" in finding.message

    def test_cycle_halves_alone_are_clean(self):
        """Half a cycle is just an unresolved import — no finding."""
        for name in ("rpr006_cycle_a.py", "rpr006_cycle_b.py"):
            report = lint_one(name, graph=True)
            assert report.active == [], [
                v.format() for v in report.active
            ]

    def test_graph_rules_silent_without_graph_flag(self):
        """``run_lint`` without ``graph=True`` keeps RPR006-RPR009 off —
        per-file linting of a graph-bad file stays green."""
        report = lint_one("rpr006_bad.py")
        assert report.active == []
        assert set(report.rules) == set(RULE_IDS)

    def test_obs_wall_clock_carve_out_is_clean(self):
        """time.time()/time_ns() inside src/repro/obs/ is allowlisted."""
        report = lint_one("rpr001_obs_good.py", select=["RPR001"])
        assert report.active == [], [v.format() for v in report.active]
        assert report.exit_code == 0

    def test_obs_carve_out_does_not_leak(self):
        """The carve-out is a path prefix: near-miss paths still fire,
        and RNG findings fire even where the wall clock is allowed."""
        report = lint_one("rpr001_obs_bad.py", select=["RPR001"])
        messages = [v.message for v in report.active]
        assert len(messages) == 2, messages
        assert any("wall-clock" in message for message in messages)
        assert any("module-global" in message for message in messages)
        assert report.exit_code == 1

    def test_new_obs_modules_covered_by_carve_out(self):
        """The PR-9 observability modules (history ledger, heartbeats)
        stamp wall-clock times and must stay RPR001-clean under the
        ``src/repro/obs/`` prefix carve-out."""
        report = lint_one("rpr001_obs_history_good.py", select=["RPR001"])
        assert report.active == [], [v.format() for v in report.active]
        assert report.exit_code == 0

    def test_profile_mode_cache_is_sanctioned_channel(self):
        """``repro.obs.profile._MODE_CACHE`` is a sanctioned RPR008
        worker-reachable global — and the sanction is exact: an
        unsanctioned global one line away in the same module still
        fires."""
        report = run_lint(
            [CORPUS / "rpr008_profile_driver.py",
             CORPUS / "rpr008_profile_channel.py"],
            graph=True,
        )
        assert [v.rule for v in report.active] == ["RPR008"], [
            v.format() for v in report.active
        ]
        finding = report.active[0]
        assert "_LEAK" in finding.message
        assert "_MODE_CACHE" not in finding.message


class TestSuppressions:
    def test_justified_suppression_passes(self):
        report = lint_one("suppression_ok.py")
        assert report.exit_code == 0
        assert len(report.suppressed) == 1
        finding = report.suppressed[0]
        assert finding.rule == "RPR001"
        assert "operator-log timestamp" in finding.justification

    def test_missing_justification_is_rejected(self):
        report = lint_one("suppression_missing_justification.py")
        rules_fired = sorted(v.rule for v in report.active)
        # the malformed directive AND the un-suppressed original
        assert rules_fired == [META_RULE, "RPR001"]
        assert report.exit_code == 1

    def test_meta_rule_cannot_be_suppressed(self, tmp_path):
        victim = tmp_path / "meta.py"
        victim.write_text(
            "# repro-lint: disable=RPR000 -- nice try\n",
            encoding="utf-8",
        )
        report = run_lint([victim], root=REPO_ROOT)
        assert [v.rule for v in report.active] == [META_RULE]

    def test_previous_line_suppression(self, tmp_path):
        victim = tmp_path / "prev.py"
        victim.write_text(
            "# repro-lint: treat-as=src/repro/analysis/x.py\n"
            "import time\n"
            "# repro-lint: disable=RPR001 -- telemetry only\n"
            "NOW = time.time()\n",
            encoding="utf-8",
        )
        report = run_lint([victim], root=REPO_ROOT)
        assert report.active == []
        assert len(report.suppressed) == 1


class TestEngine:
    def test_treat_as_scopes_path_rules(self, tmp_path):
        source = "import time\nNOW = time.time()\n"
        unscoped = tmp_path / "unscoped.py"
        unscoped.write_text(source, encoding="utf-8")
        scoped = tmp_path / "scoped.py"
        scoped.write_text(
            "# repro-lint: treat-as=src/repro/devtools/x.py\n" + source,
            encoding="utf-8",
        )
        # the wall-clock allowlist covers devtools/, so only the
        # unscoped file fires
        report = run_lint([unscoped, scoped], root=REPO_ROOT)
        assert len(report.active) == 1
        assert report.active[0].path.endswith("unscoped.py")

    def test_syntax_error_reports_meta_finding(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n", encoding="utf-8")
        report = run_lint([broken], root=REPO_ROOT)
        assert [v.rule for v in report.active] == [META_RULE]
        assert "syntax error" in report.active[0].message

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError, match="unknown rule id"):
            lint_one("rpr001_good.py", select=["RPR999"])

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            run_lint([CORPUS / "does_not_exist.py"])

    def test_corpus_directory_is_skipped_in_directory_walk(self):
        report = run_lint([CORPUS.parent / "lint_corpus" / ".."],
                          select=["RPR001"])
        # walking tests/ must not pick up the deliberately-bad corpus
        corpus_hits = [v for v in report.active
                       if "lint_corpus" in v.path]
        assert corpus_hits == []

    def test_rule_ids_and_descriptions_are_complete(self):
        rules = all_rules()
        assert tuple(rule.rule_id for rule in rules) == RULE_IDS
        assert all(rule.description for rule in rules)
        graph_rules = all_graph_rules()
        assert tuple(r.rule_id for r in graph_rules) == GRAPH_RULE_IDS
        assert all(r.description for r in graph_rules)
        assert all(getattr(r, "requires_graph", False)
                   for r in graph_rules)

    def test_graph_suppressions_route_through_anchor_file(self, tmp_path):
        """A graph finding honours the disable directive of the file it
        is anchored in, with the justification carried through."""
        victim = tmp_path / "layered.py"
        victim.write_text(
            "# repro-lint: treat-as=src/repro/circuits/x.py\n"
            "# repro-lint: disable=RPR006 -- transitional import, "
            "tracked for removal\n"
            "from repro.exec.backends import resolve_backend\n",
            encoding="utf-8",
        )
        report = run_lint([victim], root=REPO_ROOT, graph=True)
        assert report.active == [], [v.format() for v in report.active]
        assert len(report.suppressed) == 1
        assert report.suppressed[0].rule == "RPR006"
        assert "transitional" in report.suppressed[0].justification

    def test_report_profile_fields(self):
        report = lint_one("rpr006_bad.py", graph=True)
        assert set(report.rules) == set(ALL_RULE_IDS)
        assert "graph_build" in report.rule_seconds
        for rule_id in ALL_RULE_IDS:
            assert report.rule_seconds[rule_id] >= 0.0
        counts = report.file_counts
        assert len(counts) == 1
        (path, entry), = counts.items()
        assert path.endswith("rpr006_bad.py")
        assert entry == {"active": EXPECTED_BAD_COUNTS["RPR006"],
                         "suppressed": 0}


class TestCli:
    def test_json_report_shape(self, tmp_path):
        out = tmp_path / "report.json"
        code = lint_main([str(CORPUS / "rpr005_bad.py"),
                          "--json", str(out), "--quiet"])
        assert code == 1
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["version"] == 2
        assert payload["files_scanned"] == 1
        assert payload["active"] == EXPECTED_BAD_COUNTS["RPR005"]
        assert {v["rule"] for v in payload["violations"]} == {"RPR005"}
        assert {"rule", "path", "line", "col", "message", "suppressed",
                "justification"} <= set(payload["violations"][0])
        profile = payload["profile"]
        assert set(profile) == {"rule_seconds", "files"}
        assert set(profile["rule_seconds"]) == set(RULE_IDS)
        (path, entry), = profile["files"].items()
        assert path.endswith("rpr005_bad.py")
        assert entry == {"active": EXPECTED_BAD_COUNTS["RPR005"],
                         "suppressed": 0}

    @staticmethod
    def _scrubbed(path):
        """The report minus its wall-time values (the one
        run-dependent part of the artifact)."""
        payload = json.loads(path.read_text(encoding="utf-8"))
        timed = payload["profile"].pop("rule_seconds")
        return payload, set(timed)

    def test_json_report_is_deterministic(self, tmp_path):
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        lint_main([str(CORPUS / "rpr001_bad.py"), "--json", str(first),
                   "--quiet"])
        lint_main([str(CORPUS / "rpr001_bad.py"), "--json", str(second),
                   "--quiet"])
        payload_a, timed_a = self._scrubbed(first)
        payload_b, timed_b = self._scrubbed(second)
        assert payload_a == payload_b
        assert timed_a == timed_b == set(RULE_IDS)

    def test_graph_json_artifact_is_deterministic(self, tmp_path):
        """Two ``--graph-json`` runs over the same file agree byte for
        byte (no timings in the graph artifact at all)."""
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        target = str(CORPUS / "rpr007_good.py")
        assert lint_main([target, "--graph-json", str(first),
                          "--quiet"]) == 0
        assert lint_main([target, "--graph-json", str(second),
                          "--quiet"]) == 0
        assert first.read_bytes() == second.read_bytes()
        graph = json.loads(first.read_text(encoding="utf-8"))
        assert set(graph) == {"version", "modules", "import_graph",
                              "import_cycles", "call_graph",
                              "worker_roots", "worker_reachable"}
        assert ("repro.exec.backends.execute_spec"
                in graph["worker_reachable"])

    def test_list_rules_exits_zero(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (META_RULE, *ALL_RULE_IDS):
            assert rule_id in out

    def test_usage_error_exit_code(self):
        assert lint_main(["--select", "NOPE", "src"]) == 2
        assert lint_main([str(CORPUS / "missing.py")]) == 2

    def test_module_invocation_contract(self):
        """``python -m repro.devtools.lint <bad file>`` exits 1."""
        completed = subprocess.run(
            (sys.executable, "-m", "repro.devtools.lint",
             str(CORPUS / "rpr002_bad.py")),
            capture_output=True, text=True, timeout=60,
            cwd=REPO_ROOT,
        )
        assert completed.returncode == 1, completed.stderr
        assert "RPR002" in completed.stdout


class TestSelfGate:
    def test_repo_tree_is_lint_clean(self):
        """The blocking CI check: the repo satisfies its own invariants,
        including the whole-program RPR006-RPR009 pass."""
        report = run_lint([REPO_ROOT / "src", REPO_ROOT / "tests",
                           REPO_ROOT / "benchmarks",
                           REPO_ROOT / "examples"], graph=True)
        assert report.active == [], "\n".join(
            v.format() for v in report.active
        )
        # the four raw-simulator micro-benchmarks carry justified
        # suppressions; anything beyond them deserves a fresh look
        assert len(report.suppressed) == 4
        assert all(v.justification for v in report.suppressed)
        assert report.graph is not None
        assert report.graph.import_cycles() == []
