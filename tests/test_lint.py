"""Tests for the invariant linter (repro.devtools) and its corpus.

Three layers:

* engine mechanics — suppression grammar, treat-as scoping, rule
  selection, JSON report shape, exit codes, syntax-error handling;
* the per-rule positive/negative corpus under ``tests/lint_corpus/``
  (each rule must fire on its ``*_bad.py`` and stay silent on its
  ``*_good.py``);
* the self-gate — linting the repo's own ``src``/``tests``/
  ``benchmarks``/``examples`` must come back clean, which is the same
  check the blocking CI step runs.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools import META_RULE, all_rules, run_lint
from repro.devtools.lint import main as lint_main

REPO_ROOT = Path(__file__).parent.parent
CORPUS = Path(__file__).parent / "lint_corpus"

RULE_IDS = ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005")

#: How many findings each positive corpus file must produce for its rule.
EXPECTED_BAD_COUNTS = {
    "RPR001": 7,   # 2 wall-clock + 5 RNG findings in rpr001_bad.py
    "RPR002": 3,   # pool import + .run + .run_stochastic
    "RPR003": 1,   # one drift finding naming every changed field
    "RPR004": 2,   # orphaned construction + function-nested register
    "RPR005": 3,   # bare except + silent Exception + silent BaseException
}


def lint_one(name: str, **kwargs):
    return run_lint([CORPUS / name], **kwargs)


class TestCorpus:
    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_positive_corpus_fires(self, rule_id):
        report = lint_one(f"{rule_id.lower()}_bad.py", select=[rule_id])
        fired = [v for v in report.active if v.rule == rule_id]
        assert len(fired) == EXPECTED_BAD_COUNTS[rule_id], [
            v.format() for v in report.active
        ]
        assert report.exit_code == 1

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_negative_corpus_is_clean(self, rule_id):
        report = lint_one(f"{rule_id.lower()}_good.py", select=[rule_id])
        assert report.active == [], [v.format() for v in report.active]
        assert report.exit_code == 0

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_positive_corpus_clean_under_all_other_rules(self, rule_id):
        """Each bad file violates *only* its own rule (corpus hygiene)."""
        report = lint_one(f"{rule_id.lower()}_bad.py",
                          ignore=[rule_id])
        assert report.active == [], [v.format() for v in report.active]

    def test_obs_wall_clock_carve_out_is_clean(self):
        """time.time()/time_ns() inside src/repro/obs/ is allowlisted."""
        report = lint_one("rpr001_obs_good.py", select=["RPR001"])
        assert report.active == [], [v.format() for v in report.active]
        assert report.exit_code == 0

    def test_obs_carve_out_does_not_leak(self):
        """The carve-out is a path prefix: near-miss paths still fire,
        and RNG findings fire even where the wall clock is allowed."""
        report = lint_one("rpr001_obs_bad.py", select=["RPR001"])
        messages = [v.message for v in report.active]
        assert len(messages) == 2, messages
        assert any("wall-clock" in message for message in messages)
        assert any("module-global" in message for message in messages)
        assert report.exit_code == 1


class TestSuppressions:
    def test_justified_suppression_passes(self):
        report = lint_one("suppression_ok.py")
        assert report.exit_code == 0
        assert len(report.suppressed) == 1
        finding = report.suppressed[0]
        assert finding.rule == "RPR001"
        assert "operator-log timestamp" in finding.justification

    def test_missing_justification_is_rejected(self):
        report = lint_one("suppression_missing_justification.py")
        rules_fired = sorted(v.rule for v in report.active)
        # the malformed directive AND the un-suppressed original
        assert rules_fired == [META_RULE, "RPR001"]
        assert report.exit_code == 1

    def test_meta_rule_cannot_be_suppressed(self, tmp_path):
        victim = tmp_path / "meta.py"
        victim.write_text(
            "# repro-lint: disable=RPR000 -- nice try\n",
            encoding="utf-8",
        )
        report = run_lint([victim], root=REPO_ROOT)
        assert [v.rule for v in report.active] == [META_RULE]

    def test_previous_line_suppression(self, tmp_path):
        victim = tmp_path / "prev.py"
        victim.write_text(
            "# repro-lint: treat-as=src/repro/analysis/x.py\n"
            "import time\n"
            "# repro-lint: disable=RPR001 -- telemetry only\n"
            "NOW = time.time()\n",
            encoding="utf-8",
        )
        report = run_lint([victim], root=REPO_ROOT)
        assert report.active == []
        assert len(report.suppressed) == 1


class TestEngine:
    def test_treat_as_scopes_path_rules(self, tmp_path):
        source = "import time\nNOW = time.time()\n"
        unscoped = tmp_path / "unscoped.py"
        unscoped.write_text(source, encoding="utf-8")
        scoped = tmp_path / "scoped.py"
        scoped.write_text(
            "# repro-lint: treat-as=src/repro/devtools/x.py\n" + source,
            encoding="utf-8",
        )
        # the wall-clock allowlist covers devtools/, so only the
        # unscoped file fires
        report = run_lint([unscoped, scoped], root=REPO_ROOT)
        assert len(report.active) == 1
        assert report.active[0].path.endswith("unscoped.py")

    def test_syntax_error_reports_meta_finding(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n", encoding="utf-8")
        report = run_lint([broken], root=REPO_ROOT)
        assert [v.rule for v in report.active] == [META_RULE]
        assert "syntax error" in report.active[0].message

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError, match="unknown rule id"):
            lint_one("rpr001_good.py", select=["RPR999"])

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            run_lint([CORPUS / "does_not_exist.py"])

    def test_corpus_directory_is_skipped_in_directory_walk(self):
        report = run_lint([CORPUS.parent / "lint_corpus" / ".."],
                          select=["RPR001"])
        # walking tests/ must not pick up the deliberately-bad corpus
        corpus_hits = [v for v in report.active
                       if "lint_corpus" in v.path]
        assert corpus_hits == []

    def test_rule_ids_and_descriptions_are_complete(self):
        rules = all_rules()
        assert tuple(rule.rule_id for rule in rules) == RULE_IDS
        assert all(rule.description for rule in rules)


class TestCli:
    def test_json_report_shape(self, tmp_path):
        out = tmp_path / "report.json"
        code = lint_main([str(CORPUS / "rpr005_bad.py"),
                          "--json", str(out), "--quiet"])
        assert code == 1
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["version"] == 1
        assert payload["files_scanned"] == 1
        assert payload["active"] == EXPECTED_BAD_COUNTS["RPR005"]
        assert {v["rule"] for v in payload["violations"]} == {"RPR005"}
        assert {"rule", "path", "line", "col", "message", "suppressed",
                "justification"} <= set(payload["violations"][0])

    def test_json_report_is_deterministic(self, tmp_path):
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        lint_main([str(CORPUS / "rpr001_bad.py"), "--json", str(first),
                   "--quiet"])
        lint_main([str(CORPUS / "rpr001_bad.py"), "--json", str(second),
                   "--quiet"])
        assert first.read_bytes() == second.read_bytes()

    def test_list_rules_exits_zero(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (META_RULE, *RULE_IDS):
            assert rule_id in out

    def test_usage_error_exit_code(self):
        assert lint_main(["--select", "NOPE", "src"]) == 2
        assert lint_main([str(CORPUS / "missing.py")]) == 2

    def test_module_invocation_contract(self):
        """``python -m repro.devtools.lint <bad file>`` exits 1."""
        completed = subprocess.run(
            (sys.executable, "-m", "repro.devtools.lint",
             str(CORPUS / "rpr002_bad.py")),
            capture_output=True, text=True, timeout=60,
            cwd=REPO_ROOT,
        )
        assert completed.returncode == 1, completed.stderr
        assert "RPR002" in completed.stdout


class TestSelfGate:
    def test_repo_tree_is_lint_clean(self):
        """The blocking CI check: the repo satisfies its own invariants."""
        report = run_lint([REPO_ROOT / "src", REPO_ROOT / "tests",
                           REPO_ROOT / "benchmarks",
                           REPO_ROOT / "examples"])
        assert report.active == [], "\n".join(
            v.format() for v in report.active
        )
        # the four raw-simulator micro-benchmarks carry justified
        # suppressions; anything beyond them deserves a fresh look
        assert len(report.suppressed) == 4
        assert all(v.justification for v in report.suppressed)
