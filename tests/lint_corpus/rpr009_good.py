# repro-lint: treat-as=src/repro/sim/goodseed.py
"""RPR009 negatives: every seed expression roots in a parameter.

This is the ``(seed, shot_index)`` discipline that makes shot streams
shard-stable: any worker can re-derive the exact stream for shot *k*
from the spec alone.
"""

from __future__ import annotations

import random

import numpy as np


def shot_rng(seed: int, shot_index: int) -> np.random.Generator:
    return np.random.default_rng((seed, shot_index))


def sample(seed: int, shots: int) -> list:
    values = []
    for shot in range(shots):
        rng = np.random.default_rng((seed, shot))
        values.append(rng.random())
    return values


def spec_stream(spec, offset: int) -> random.Random:
    base = spec.seed + offset
    return random.Random(base)
