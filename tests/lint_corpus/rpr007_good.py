# repro-lint: treat-as=src/repro/exec/backends.py
"""RPR007 negatives: a worker boundary that serializes cleanly.

Task functions live at module level, spec fields are plain data or
pinned project dataclasses, and the only worker-side resources are
arguments or locals.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass


@dataclass(frozen=True)
class JobSpec:
    seed: int = 0
    shots: int = 0
    label: str = ""
    tags: tuple[str, ...] = ()


def execute_spec(spec: JobSpec, key: str) -> tuple[str, int]:
    results: dict[str, int] = {}
    results[key] = spec.seed + spec.shots
    with open(f"{key}.sidecar", "w", encoding="utf-8") as handle:
        handle.write(str(results[key]))
    return key, results[key]


def submit_all(pool: ProcessPoolExecutor, specs: list) -> list:
    return [pool.submit(execute_spec, spec, spec.label) for spec in specs]
