# repro-lint: treat-as=src/repro/sim/cycle_a.py
"""RPR006 cycle fixture, half A: imports B at module level.

Linted together with ``rpr006_cycle_b.py`` this forms a two-module
import cycle; the single violation is anchored here (the
alphabetically-smallest member).  Both imports are same-package, so
the only finding is the cycle itself.
"""

# RPR006 (cycle): module-level edge into the cycle partner
from repro.sim.cycle_b import helper_b


def helper_a() -> int:
    return helper_b() + 1
