# repro-lint: treat-as=src/repro/analysis/example_driver.py
"""RPR002 negatives: the same driver lowered to engine JobSpecs."""

from repro.exec import JobSpec, run_jobs


def sweep(circuits, device, noise):
    specs = [
        JobSpec(circuit=circuit, device=device, noise=noise)
        for circuit in circuits
    ]
    specs.append(JobSpec(circuit=circuits[0], device=device, noise=noise,
                         shots=100, seed=0))
    results = run_jobs(specs, workers=4)     # engine path: cached, deduped
    return results


def other_run_calls_stay_legal(engine, strategy, space, evaluate):
    # .run() on non-simulator receivers is exactly how the engine is used
    engine.run([])
    return strategy.run(space, evaluate)
