# repro-lint: treat-as=src/repro/noise/custom_scenarios.py
"""RPR004 positives: registrations a pool worker would never see."""

from repro.noise.scenarios import NoiseScenario, register_scenario

# RPR004: constructed at import time but never registered — no JobSpec
# can ever name it
ORPHANED = NoiseScenario(name="orphaned", crosstalk_strength=1e-3)


def install_scenarios() -> None:
    # RPR004: runs only in the calling process; a re-importing pool
    # worker never executes this function
    register_scenario(NoiseScenario(name="late", leakage_rate_2q=1e-4))
