# repro-lint: treat-as=src/repro/sim/cycle_b.py
"""RPR006 cycle fixture, half B: imports A back at module level.

The sanctioned fix — moving this import inside ``helper_b`` — is what
``rpr006_good.py`` demonstrates; here it stays at module level so the
Tarjan pass has a real cycle to find.
"""

from repro.sim.cycle_a import helper_a


def helper_b() -> int:
    return 1


def helper_chain() -> int:
    return helper_a()
