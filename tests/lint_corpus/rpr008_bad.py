# repro-lint: treat-as=src/repro/exec/backends.py
"""RPR008 positives: worker-reachable writes to module-level state.

Impersonates ``repro.exec.backends`` so ``execute_spec`` is a worker
root; every write below lands in the worker's private copy (fork) or
machine (remote) and silently diverges from the parent.
"""

from __future__ import annotations

_RESULT_CACHE: dict[str, object] = {}
_SHOT_LOG: list[str] = []
_SEEN = set()
_STATS = dict(executed=0)


def _note(key: str) -> None:
    # RPR008: transitively worker-reachable (called by execute_spec)
    _STATS.update(executed=_STATS["executed"] + 1)


def execute_spec(spec: object, key: str) -> object:
    global _SEEN
    # RPR008: item write into a module-level dict
    _RESULT_CACHE[key] = spec
    # RPR008: in-place mutation of a module-level list
    _SHOT_LOG.append(key)
    # RPR008: rebinding a module-level mutable global
    _SEEN = _SEEN | {key}
    _note(key)
    return spec
