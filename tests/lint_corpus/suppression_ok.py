# repro-lint: treat-as=src/repro/analysis/example_telemetry.py
"""A justified suppression: the finding is recorded but not active."""

import time


def log_line(message: str) -> str:
    # repro-lint: disable=RPR001 -- operator-log timestamp only; never stored in a result or hashed into a key
    return f"{time.time():.0f} {message}"
