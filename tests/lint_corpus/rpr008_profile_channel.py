# repro-lint: treat-as=src/repro/obs/profile.py
"""RPR008 sanctioned-channel half: the profiling-mode cache.

Linted together with ``rpr008_profile_driver.py`` (which impersonates
``repro.exec.backends`` and calls :func:`resolve_mode` from its worker
root), ``_MODE_CACHE`` becomes a worker-reachable global write — and
stays clean, because ``("repro.obs.profile", "_MODE_CACHE")`` is on the
RPR008 sanctioned list: each process memoising its own parse of the
profiling environment variable is the intended behaviour.  The
``_LEAK`` write right next to it proves the sanction does not leak —
it must fire exactly one RPR008 finding.
"""

from __future__ import annotations

import os

_MODE_CACHE: dict[str, object] = {}
_LEAK: list[str] = []


def resolve_mode() -> object:
    if "mode" not in _MODE_CACHE:
        # sanctioned: per-process memo of an env-var parse
        _MODE_CACHE["mode"] = os.environ.get("TILT_REPRO_PROFILE") or None
    # RPR008: an unsanctioned global write one line away must still fire
    _LEAK.append("resolved")
    return _MODE_CACHE["mode"]
