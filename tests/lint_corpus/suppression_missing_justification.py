# repro-lint: treat-as=src/repro/analysis/example_telemetry.py
"""A bare disable without justification: rejected, both findings fire."""

import time


def log_line(message: str) -> str:
    return f"{time.time():.0f} {message}"  # repro-lint: disable=RPR001
