# repro-lint: treat-as=src/repro/analysis/example_driver.py
"""RPR002 positives: a driver that bypasses the execution engine."""

from concurrent.futures import ProcessPoolExecutor  # RPR002: ad-hoc pool

from repro.compiler.pipeline import LinQCompiler
from repro.sim.tilt_sim import TiltSimulator


def sweep(circuits, device, noise):
    simulator = TiltSimulator(device, noise)
    compiled = [LinQCompiler(device).compile(c) for c in circuits]
    analytic = [simulator.run(p) for p in compiled]          # RPR002
    sampled = simulator.run_stochastic(compiled[0],          # RPR002
                                       shots=100, seed=0)
    with ProcessPoolExecutor() as pool:
        extra = list(pool.map(simulator.run, compiled))
    return analytic, sampled, extra
