# repro-lint: treat-as=src/repro/noise/custom_scenarios.py
"""RPR004 negatives: every construction is registered at import time."""

from repro.noise.scenarios import (
    NoiseScenario,
    compose_scenarios,
    register_scenario,
)

# direct argument form
register_scenario(NoiseScenario(name="hot-xt", crosstalk_strength=5e-4))

# assign-then-register form (the scenarios.py BASELINE pattern)
GENTLE_LEAK = NoiseScenario(name="gentle-leak", leakage_rate_2q=1e-5)
register_scenario(GENTLE_LEAK)

# construction feeding a composition that gets registered
register_scenario(compose_scenarios(
    "hot-and-leaky",
    NoiseScenario(name="xt-part", crosstalk_strength=5e-4),
    GENTLE_LEAK,
))
