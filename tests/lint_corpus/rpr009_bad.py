# repro-lint: treat-as=src/repro/sim/badseed.py
"""RPR009 positives: seeds that do not derive from parameters.

All constructions are *seeded* (so RPR001 stays quiet — one finding
per defect); what is wrong is where the seed comes from.
"""

from __future__ import annotations

import random

import numpy as np

GLOBAL_SEED = 42

# RPR009: module-level generator - stream position is import-order state
_RNG = np.random.default_rng(0)


def constant_stream(shots: int) -> list:
    # RPR009: constant seed - every call site shares one stream
    rng = np.random.default_rng(1234)
    return [rng.random() for _ in range(shots)]


def ambient_stream(shots: int) -> list:
    # RPR009: seeded from a module global, not a parameter
    rng = np.random.default_rng(GLOBAL_SEED)
    return [rng.random() for _ in range(shots)]


def derived_from_constants(shots: int) -> list:
    base = 7
    offset = 3
    # RPR009: dataflow roots only in constants, never in a parameter
    rng = random.Random(base + offset)
    return [rng.random() for _ in range(shots)]
