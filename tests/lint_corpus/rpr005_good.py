# repro-lint: treat-as=src/repro/exec/example_worker.py
"""RPR005 negatives: narrow catches and broad catches that act."""

import logging

log = logging.getLogger(__name__)


def unlink_best_effort(path, os_module) -> None:
    try:
        os_module.unlink(path)
    except OSError:  # narrow, expected: temp file already gone
        pass


def flush_segment(handle, payload) -> None:
    try:
        handle.write(payload)
    except Exception:
        # broad but not silent: surfaced and re-raised, resume stays honest
        log.error("segment write failed; run must not look complete")
        raise
