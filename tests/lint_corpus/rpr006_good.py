# repro-lint: treat-as=src/repro/circuits/goodlayer.py
"""RPR006 negatives: a base-layer module staying in its layer.

Same-package imports and the ``exceptions`` leaf are always legal for
``circuits``; function-scoped imports of the same targets are equally
fine (layering judges the target, not the placement).
"""

from repro.circuits.gates import Gate
from repro.exceptions import ReproError


def validate(gate: Gate) -> None:
    from repro.circuits.circuit import Circuit

    if not isinstance(gate, Gate):
        raise ReproError(f"not a gate: {gate!r}")
    del Circuit
