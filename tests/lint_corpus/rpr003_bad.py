# repro-lint: treat-as=src/repro/exec/jobs.py
"""RPR003 positive: a JobSpec that drifted from the golden fixture.

One field added (``priority``) and one default changed (``seed``) —
each alone silently moves every content hash.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class JobSpec:
    circuit: Circuit
    device: DeviceSpec
    backend: str = "tilt"
    config: CompilerConfig | None = None
    noise: NoiseParameters | None = None
    simulate: bool = True
    shots: int = 0
    seed: int = 1
    shot_offset: int = 0
    scenario: str = BASELINE_SCENARIO
    label: str = ""
    priority: int = 0
