# repro-lint: treat-as=src/repro/obs_helpers/example_recorder.py
"""RPR001 obs carve-out positives: the allowlist is a prefix, not a grep.

``src/repro/obs_helpers/`` is *not* ``src/repro/obs/`` — wall-clock
reads here must still be flagged, and RNG violations are flagged even
inside the real obs tree (the carve-out covers only the wall clock).
"""

import random
import time


def stamp_record() -> dict:
    return {"ts": time.time()}               # RPR001: outside the carve-out


def worker_nonce() -> float:
    return random.random()                   # RPR001: module-global stream
