# repro-lint: treat-as=src/repro/obs/history.py
"""RPR001 obs carve-out covers the run-ledger module.

The cross-run history ledger stamps every record with an epoch
timestamp (``ts``) so records from different hosts/processes sort and
diff coherently — exactly the telemetry use the ``src/repro/obs/``
wall-clock allowlist exists for.  The RNG checks still apply.
"""

import time


def stamp_record(record: dict) -> dict:
    record.setdefault("ts", time.time())     # allowlisted: ledger stamp
    return record


def heartbeat_payload(completed: int, planned: int) -> dict:
    return {
        "ts": time.time(),                   # allowlisted: heartbeat stamp
        "completed": completed,
        "remaining": max(0, planned - completed),
    }
