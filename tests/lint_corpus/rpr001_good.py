# repro-lint: treat-as=src/repro/analysis/example_study.py
"""RPR001 negatives: seeded generators and monotonic timing only."""

import random
import time

import numpy as np


def time_phase() -> float:
    start = time.perf_counter()              # monotonic duration: fine
    return time.perf_counter() - start


def draw_samples(seed: int, shot_index: int, n: int) -> list[float]:
    rng = np.random.default_rng((seed, shot_index))   # the (seed, shot) contract
    stream = random.Random(seed)                      # seeded: fine
    return [stream.random() for _ in range(n)] + list(rng.random(n))
