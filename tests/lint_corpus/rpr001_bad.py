# repro-lint: treat-as=src/repro/analysis/example_study.py
"""RPR001 positives: global RNG state and wall-clock reads in a driver."""

import random
import time
from datetime import datetime

import numpy as np


def stamp_result() -> dict:
    return {
        "finished_at": time.time(),          # RPR001: wall clock
        "day": datetime.now().isoformat(),   # RPR001: wall clock
    }


def draw_samples(n: int) -> list[float]:
    rng = np.random.default_rng()            # RPR001: unseeded generator
    np.random.seed(0)                        # RPR001: legacy global API
    noise = np.random.normal(size=n)         # RPR001: legacy global API
    jitter = random.random()                 # RPR001: module-global stream
    coin = random.Random()                   # RPR001: unseeded Random
    return [jitter, coin.random(), float(noise[0]), float(rng.random())]
