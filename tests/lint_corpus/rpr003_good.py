# repro-lint: treat-as=src/repro/exec/jobs.py
"""RPR003 negative: a JobSpec field-for-field equal to the fixture.

Mirrors the real ``src/repro/exec/jobs.py`` dataclass; when that class
changes (with a fixture regeneration), update this mirror in the same
PR — the corpus test failing here is rule RPR003 doing its job.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class JobSpec:
    circuit: Circuit
    device: DeviceSpec
    backend: str = "tilt"
    config: CompilerConfig | None = None
    noise: NoiseParameters | None = None
    simulate: bool = True
    shots: int = 0
    seed: int = 0
    shot_offset: int = 0
    scenario: str = BASELINE_SCENARIO
    label: str = ""
