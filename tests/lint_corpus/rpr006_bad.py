# repro-lint: treat-as=src/repro/circuits/badlayer.py
"""RPR006 positives: a base-layer module importing up the stack.

``circuits`` is the bottom of the architecture — it may import only
``repro.exceptions``.  Every import below reaches sideways or upward
and must be flagged by the layer table.
"""

# RPR006: circuits may not import the execution layer
from repro.exec.backends import resolve_backend

# RPR006: circuits may not import a driver layer
from repro.analysis.experiments import sweep_records

# RPR006: obs is a leaf reserved for exec/search
from repro.obs.trace import span

# RPR006: runtime code may never import devtools
from repro.devtools.core import run_lint

__all__ = ["resolve_backend", "sweep_records", "span", "run_lint"]
