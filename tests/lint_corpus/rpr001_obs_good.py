# repro-lint: treat-as=src/repro/obs/example_recorder.py
"""RPR001 obs carve-out negative: wall clock is legal inside repro.obs.

Trace records need epoch timestamps (comparable across processes), so
``time.time()`` is allowlisted for ``src/repro/obs/`` — but only the
wall-clock check is relaxed: the RNG checks still apply here.
"""

import random
import time


def span_record(name: str) -> dict:
    start = time.perf_counter()
    return {
        "name": name,
        "ts": time.time(),                   # allowlisted: telemetry stamp
        "ts_ns": time.time_ns(),             # allowlisted: telemetry stamp
        "dur_s": time.perf_counter() - start,
    }


def jitter_nonce(seed: int) -> float:
    return random.Random(seed).random()      # seeded: fine everywhere
