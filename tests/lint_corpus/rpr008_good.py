# repro-lint: treat-as=src/repro/exec/backends.py
"""RPR008 negatives: state handled through the sanctioned channels.

Registry writes happen at import time (the module body is not a worker
root — a re-importing worker re-runs them deterministically); worker
code builds *local* containers and returns them for the parent to
merge.
"""

from __future__ import annotations

_REGISTRY: dict[str, str] = {}

# import-time registration: the sanctioned channel (RPR004 polices
# that it stays at import time)
_REGISTRY["baseline"] = "tilt"
_REGISTRY.setdefault("fallback", "ideal")


def execute_spec(spec: object, key: str) -> dict[str, object]:
    results: dict[str, object] = {}
    results[key] = spec
    tags = []
    tags.append(_REGISTRY.get(key, "baseline"))
    results["tags"] = tuple(tags)
    return results
