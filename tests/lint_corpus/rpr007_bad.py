# repro-lint: treat-as=src/repro/exec/backends.py
"""RPR007 positives: everything that cannot cross the worker boundary.

Impersonates ``repro.exec.backends`` so ``execute_spec`` below is a
worker root and the ambient-handle check fires on it.
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, TextIO

_AUDIT_LOG = open("audit.log", "a")
_STATE_LOCK = threading.Lock()


@dataclass(frozen=True)
class JobSpec:
    seed: int = 0
    # RPR007: a callable field makes every spec batch unpicklable
    callback: Callable[[str], None] | None = None
    # RPR007: a file-object field can never serialize
    log: TextIO | None = None


def execute_spec(spec: JobSpec, key: str) -> JobSpec:
    # RPR007: worker-reachable code capturing a module-level lock
    with _STATE_LOCK:
        # RPR007: ... and a module-level file handle
        _AUDIT_LOG.write(key)
    return spec


def submit_all(pool: ProcessPoolExecutor, specs: list) -> list:
    # RPR007: lambdas cannot be pickled across the boundary
    futures = [pool.submit(lambda: execute_spec(s, "k")) for s in specs]

    def _task(spec: JobSpec) -> JobSpec:
        return execute_spec(spec, "k")

    # RPR007: locally defined functions close over the frame
    futures.append(pool.submit(_task, specs[0]))
    return futures
