# repro-lint: treat-as=src/repro/exec/backends.py
"""RPR008 sanctioned-channel half: the worker root.

Impersonates ``repro.exec.backends`` so ``execute_spec`` is a worker
root; its call into :func:`repro.obs.profile.resolve_mode` (defined in
``rpr008_profile_channel.py``, linted together with this file) makes
the profile module's mode cache worker-reachable — the cross-module
shape the real profiling hook has.
"""

from __future__ import annotations

from repro.obs.profile import resolve_mode


def execute_spec(spec: object, key: str) -> dict[str, object]:
    mode = resolve_mode()
    return {key: spec, "profile_mode": mode}
