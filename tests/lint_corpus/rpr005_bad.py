# repro-lint: treat-as=src/repro/exec/example_worker.py
"""RPR005 positives: swallowed errors in durability-critical code."""


def flush_segment(handle, payload) -> bool:
    try:
        handle.write(payload)
    except:  # RPR005: bare except eats KeyboardInterrupt too
        return False
    return True


def best_effort_store(store, result) -> None:
    try:
        store.store(result)
    except Exception:  # RPR005: a dropped write looks like completed work
        pass


def quiet_close(backend) -> None:
    try:
        backend.close()
    except BaseException:  # RPR005: silent ellipsis body
        ...
