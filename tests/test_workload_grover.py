"""Tests for the Grover square-root (SQRT) workload."""

import pytest

from repro.exceptions import CircuitError
from repro.sim.statevector import StatevectorSimulator
from repro.workloads.grover import grover_sqrt, sqrt_workload


class TestCorrectness:
    @pytest.mark.parametrize("marked", [0, 3, 5, 7])
    def test_marked_state_is_amplified(self, marked):
        # 3 search bits -> 4 qubits total; one Grover iteration takes the
        # marked state's probability from 1/8 to ~0.78.
        circuit = grover_sqrt(search_bits=3, iterations=1, marked_state=marked)
        simulator = StatevectorSimulator()
        probabilities = simulator.probabilities(circuit)
        search_bits = 3
        marked_probability = 0.0
        n = circuit.num_qubits
        for basis_state, probability in enumerate(probabilities):
            bits = format(basis_state, f"0{n}b")
            value = sum(1 << q for q in range(search_bits) if bits[q] == "1")
            if value == marked:
                marked_probability += probability
        assert marked_probability > 0.6

    def test_two_iterations_amplify_further_on_4_bits(self):
        def marked_probability(iterations: int) -> float:
            circuit = grover_sqrt(4, iterations, marked_state=9)
            probabilities = StatevectorSimulator().probabilities(circuit)
            n = circuit.num_qubits
            total = 0.0
            for basis_state, probability in enumerate(probabilities):
                bits = format(basis_state, f"0{n}b")
                value = sum(1 << q for q in range(4) if bits[q] == "1")
                if value == 9:
                    total += probability
            return total

        assert marked_probability(2) > marked_probability(1) > 1 / 16


class TestStructure:
    def test_paper_size(self):
        circuit = sqrt_workload(78)
        assert circuit.num_qubits == 78

    def test_two_qubit_count_magnitude(self):
        from repro.compiler.decompose import decompose_to_cx

        count = decompose_to_cx(sqrt_workload(78)).num_two_qubit_gates()
        # Table II reports 1028; the reconstruction lands in the same range.
        assert 700 <= count <= 1300

    def test_ancilla_count(self):
        circuit = grover_sqrt(search_bits=10)
        assert circuit.num_qubits == 2 * 10 - 2

    def test_measure_flag(self):
        circuit = grover_sqrt(3, measure=True)
        assert circuit.count_ops()["measure"] == 3

    def test_invalid_arguments(self):
        with pytest.raises(CircuitError):
            grover_sqrt(2)
        with pytest.raises(CircuitError):
            grover_sqrt(4, iterations=0)
        with pytest.raises(CircuitError):
            grover_sqrt(3, marked_state=8)
        with pytest.raises(CircuitError):
            sqrt_workload(3)
