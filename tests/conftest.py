"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.ideal import IdealTrappedIonDevice
from repro.arch.qccd import QccdDevice
from repro.arch.tilt import TiltDevice
from repro.circuits.circuit import Circuit
from repro.noise.parameters import NoiseParameters
from repro.sim.statevector import StatevectorSimulator


@pytest.fixture
def tilt8() -> TiltDevice:
    """An 8-ion tape with a 4-laser head (smallest interesting TILT)."""
    return TiltDevice(num_qubits=8, head_size=4)


@pytest.fixture
def tilt16() -> TiltDevice:
    """A 16-ion tape with an 8-laser head (used by most routing tests)."""
    return TiltDevice(num_qubits=16, head_size=8)


@pytest.fixture
def ideal16() -> IdealTrappedIonDevice:
    return IdealTrappedIonDevice(num_qubits=16)


@pytest.fixture
def qccd16() -> QccdDevice:
    """16 ions in traps of 5 (so cross-trap traffic definitely occurs)."""
    return QccdDevice(num_qubits=16, trap_capacity=5)


@pytest.fixture
def noise() -> NoiseParameters:
    return NoiseParameters.paper_defaults()


@pytest.fixture
def noiseless() -> NoiseParameters:
    return NoiseParameters.noiseless()


@pytest.fixture
def statevector() -> StatevectorSimulator:
    return StatevectorSimulator()


@pytest.fixture
def bell_circuit() -> Circuit:
    circuit = Circuit(2, name="bell")
    circuit.h(0)
    circuit.cx(0, 1)
    return circuit


@pytest.fixture
def ghz5() -> Circuit:
    circuit = Circuit(5, name="ghz5")
    circuit.h(0)
    for q in range(4):
        circuit.cx(q, q + 1)
    return circuit


def permute_statevector(state: np.ndarray, new_from_old: list[int]) -> np.ndarray:
    """Relabel qubits of a state vector.

    ``new_from_old[old_qubit] = new_qubit``; qubit 0 is the most significant
    bit of the basis index (matching :mod:`repro.circuits.unitary`).
    """
    n = len(new_from_old)
    assert state.shape == (2**n,)
    tensor = state.reshape((2,) * n)
    # Axis i of the tensor is qubit i; move axis old -> new.
    permuted = np.moveaxis(tensor, list(range(n)), new_from_old)
    return permuted.reshape(2**n)


def routed_state_matches_logical(routed_circuit, final_mapping, logical_state,
                                 simulator: StatevectorSimulator) -> bool:
    """Check a routed (physical) circuit is equivalent to its logical source.

    The routed circuit acts on ``num_physical`` wires; after execution the
    logical qubit ``l`` lives at physical position ``final_mapping.physical(l)``.
    Undoing that relabelling must reproduce the logical final state (extended
    with |0> on the spare physical wires).
    """
    from repro.sim.statevector import states_equal_up_to_global_phase

    physical_state = simulator.run(routed_circuit)
    # Relabel physical wires back to logical indices.
    new_from_old = [0] * routed_circuit.num_qubits
    for physical in range(routed_circuit.num_qubits):
        new_from_old[physical] = final_mapping.logical(physical)
    unpermuted = permute_statevector(physical_state, new_from_old)
    num_logical = int(np.log2(len(logical_state)))
    num_physical = routed_circuit.num_qubits
    padding = np.zeros(2 ** (num_physical - num_logical), dtype=complex)
    padding[0] = 1.0
    expected = np.kron(logical_state, padding)
    return states_equal_up_to_global_phase(unpermuted, expected)
